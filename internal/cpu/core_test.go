package cpu

import (
	"testing"

	"ghostthread/internal/cache"
	"ghostthread/internal/isa"
	"ghostthread/internal/mem"
)

// testRig bundles a core with a private hierarchy over a fresh memory.
func testRig(cfg Config, memWords int64) (*Core, *mem.Memory) {
	m := mem.New(memWords)
	mc := mem.NewController(mem.ControllerConfig{AccessLatency: 200, CyclesPerLine: 4})
	llc := cache.New("LLC", cache.DefaultLLCConfig())
	hcfg := cache.DefaultHierarchyConfig()
	hcfg.HWPrefetch = false // core tests reason about exact miss counts
	h := cache.NewHierarchy(hcfg, llc, mc)
	return New(cfg, h, m), m
}

func run(t *testing.T, c *Core, maxCycles int64) int64 {
	t.Helper()
	cycles, err := c.Run(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	return cycles
}

func TestFunctionalAgreementWithInterp(t *testing.T) {
	b := isa.NewBuilder("agree")
	b.Func("main")
	acc := b.Imm(0)
	zero := b.Imm(0)
	n := b.Imm(50)
	arr := b.Imm(512)
	// Initialise arr[i] = i*3, then sum with a stride.
	b.CountedLoop("init", zero, n, func(i isa.Reg) {
		v := b.Reg()
		b.MulI(v, i, 3)
		a := b.Reg()
		b.Add(a, arr, i)
		b.Store(a, 0, v)
	})
	b.CountedLoop("sum", zero, n, func(i isa.Reg) {
		a := b.Reg()
		b.Add(a, arr, i)
		v := b.Reg()
		b.Load(v, a, 0)
		b.Add(acc, acc, v)
	})
	out := b.Imm(256)
	b.Store(out, 0, acc)
	b.Halt()
	p := b.MustBuild()

	// Reference.
	ref := mem.New(4096)
	if _, err := isa.Interp(p, ref, nil, 1_000_000); err != nil {
		t.Fatal(err)
	}

	c, m := testRig(DefaultConfig(), 4096)
	c.Load(p, nil)
	run(t, c, 1_000_000)
	if got, want := m.LoadWord(256), ref.LoadWord(256); got != want {
		t.Errorf("core result %d, want %d (interp)", got, want)
	}
	if c.Committed(0) == 0 {
		t.Error("no instructions committed")
	}
}

// buildLoads emits n loads at the given word stride starting at base.
func buildLoads(n int, base, stride int64) *isa.Program {
	b := isa.NewBuilder("loads")
	a := b.Imm(base)
	d := b.Reg()
	for i := 0; i < n; i++ {
		b.Load(d, a, int64(i)*stride)
	}
	b.Halt()
	return b.MustBuild()
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// 8 independent cold loads to distinct lines should overlap: total
	// time far below 8 sequential DRAM accesses.
	c, _ := testRig(DefaultConfig(), 1<<16)
	c.Load(buildLoads(8, 1024, 8), nil)
	cycles := run(t, c, 100_000)
	dram := int64(200 + 44)
	if cycles > 2*dram {
		t.Errorf("8 independent misses took %d cycles; expected MLP to keep it under %d", cycles, 2*dram)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// A pointer chase serialises: each load needs the previous value.
	m := mem.New(1 << 16)
	// Chain: mem[1024] -> 2048 -> 3072 -> ... distinct lines.
	n := 6
	for i := 0; i < n; i++ {
		m.StoreWord(int64(1024*(i+1)), int64(1024*(i+2)))
	}
	mc := mem.NewController(mem.ControllerConfig{AccessLatency: 200, CyclesPerLine: 4})
	llc := cache.New("LLC", cache.DefaultLLCConfig())
	hcfg := cache.DefaultHierarchyConfig()
	hcfg.HWPrefetch = false
	h := cache.NewHierarchy(hcfg, llc, mc)
	c := New(DefaultConfig(), h, m)

	b := isa.NewBuilder("chase")
	ptr := b.Imm(1024)
	for i := 0; i < n; i++ {
		b.Load(ptr, ptr, 0)
	}
	b.Halt()
	c.Load(b.MustBuild(), nil)
	cycles := run(t, c, 100_000)
	if cycles < int64(n)*200 {
		t.Errorf("pointer chase of %d took %d cycles; expected at least %d (serialised misses)",
			n, cycles, n*200)
	}
}

func TestMSHRLimitBoundsMLP(t *testing.T) {
	// With 2 MSHRs, 16 independent misses take ~8 serialised rounds.
	cfg := DefaultConfig()
	cfg.MSHRs = 2
	c2, _ := testRig(cfg, 1<<16)
	c2.Load(buildLoads(16, 1024, 8), nil)
	limited := run(t, c2, 1_000_000)

	cfg.MSHRs = 16
	c16, _ := testRig(cfg, 1<<16)
	c16.Load(buildLoads(16, 1024, 8), nil)
	wide := run(t, c16, 1_000_000)

	if limited < 3*wide {
		t.Errorf("MSHR limit had little effect: 2 MSHRs %d cycles, 16 MSHRs %d", limited, wide)
	}
}

func TestSerializeDrainsAndCostsCycles(t *testing.T) {
	cfg := DefaultConfig()
	b := isa.NewBuilder("ser")
	d := b.Imm(1)
	for i := 0; i < 4; i++ {
		b.AddI(d, d, 1)
		b.Serialize()
	}
	b.Halt()
	c, _ := testRig(cfg, 1024)
	c.Load(b.MustBuild(), nil)
	cycles := run(t, c, 100_000)
	if c.Serializes(0) != 4 {
		t.Errorf("retired %d serializes, want 4", c.Serializes(0))
	}
	if cycles < 4*cfg.SerializeLat {
		t.Errorf("4 serializes took %d cycles, want at least %d", cycles, 4*cfg.SerializeLat)
	}
}

func TestSerializeBlocksFetchUntilDrain(t *testing.T) {
	// A serialize after a DRAM-missing load must hold fetch until the
	// miss resolves: total time ≈ miss + serialize, not overlapped nops.
	cfg := DefaultConfig()
	b := isa.NewBuilder("serload")
	a := b.Imm(2048)
	d := b.Reg()
	b.Load(d, a, 0) // cold DRAM miss
	b.Serialize()
	for i := 0; i < 50; i++ {
		b.Nop()
	}
	b.Halt()
	c, _ := testRig(cfg, 1<<16)
	c.Load(b.MustBuild(), nil)
	cycles := run(t, c, 100_000)
	minExpect := int64(200) + cfg.SerializeLat
	if cycles < minExpect {
		t.Errorf("serialize did not wait for the miss: %d cycles, want >= %d", cycles, minExpect)
	}
}

func TestFullWindowStall(t *testing.T) {
	// A tight loop around a dependent DRAM miss stalls at the ROB head;
	// stall cycles must be attributed to the load's PC.
	m := mem.New(1 << 20)
	// arr[i] holds a pseudo-random index into a large victim array.
	arrBase, victimBase := int64(4096), int64(1<<16)
	iters := int64(64)
	for i := int64(0); i < iters; i++ {
		m.StoreWord(arrBase+i, victimBase+(i*7919%4096)*8)
	}
	mc := mem.NewController(mem.ControllerConfig{AccessLatency: 200, CyclesPerLine: 4})
	llc := cache.New("LLC", cache.DefaultLLCConfig())
	hcfg := cache.DefaultHierarchyConfig()
	hcfg.HWPrefetch = false
	h := cache.NewHierarchy(hcfg, llc, mc)
	c := New(DefaultConfig(), h, m)

	b := isa.NewBuilder("fws")
	b.Func("main")
	acc := b.Imm(0)
	base := b.Imm(arrBase)
	zero := b.Imm(0)
	n := b.Imm(iters)
	var loadPC int
	b.CountedLoop("loop", zero, n, func(i isa.Reg) {
		a := b.Reg()
		b.Add(a, base, i)
		idx := b.Reg()
		b.Load(idx, a, 0)
		v := b.Reg()
		loadPC = b.Load(v, idx, 0) // dependent, cache-missing load
		// Computation with the loaded value.
		x := b.Reg()
		b.Mul(x, v, v)
		b.Add(acc, acc, x)
	})
	out := b.Imm(128)
	b.Store(out, 0, acc)
	b.Halt()
	c.Load(b.MustBuild(), nil)
	run(t, c, 10_000_000)

	stall, exec := c.PCProfile(0)
	if exec[loadPC] != iters {
		t.Errorf("target load executed %d times, want %d", exec[loadPC], iters)
	}
	cpi := float64(stall[loadPC]) / float64(exec[loadPC])
	if cpi < 10 {
		t.Errorf("target load CPI = %.1f; expected a stalling load (>10)", cpi)
	}
	// The stall cycles must concentrate on the missing load, not on the
	// surrounding ALU work.
	var total int64
	for _, s := range stall {
		total += s
	}
	if stall[loadPC]*2 < total {
		t.Errorf("target load got %d of %d stall cycles; expected it to dominate", stall[loadPC], total)
	}
}

func TestSpawnPrefetchHelperWarmsCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 50
	cfg.SpawnCostHelper = 20

	nLines := 16
	// Helper prefetches nLines distinct lines.
	hb := isa.NewBuilder("helper")
	base := hb.Imm(8192)
	for i := 0; i < nLines; i++ {
		hb.Prefetch(base, int64(i*8))
	}
	hb.Halt()
	helper := hb.MustBuild()

	// Main spawns, burns time in an ALU loop, then loads the lines.
	b := isa.NewBuilder("main")
	b.Spawn(0)
	d := b.Imm(1)
	zero := b.Imm(0)
	n := b.Imm(3000)
	b.CountedLoop("delay", zero, n, func(i isa.Reg) {
		b.AddI(d, d, 1)
	})
	mbase := b.Imm(8192)
	v := b.Reg()
	for i := 0; i < nLines; i++ {
		b.Load(v, mbase, int64(i*8))
	}
	b.Join()
	b.Halt()

	c, _ := testRig(cfg, 1<<16)
	c.Load(b.MustBuild(), []*isa.Program{helper})
	run(t, c, 1_000_000)

	if c.Prefetches != int64(nLines) {
		t.Errorf("helper issued %d prefetches, want %d", c.Prefetches, nLines)
	}
	if c.LoadLevel[cache.LevelL1] < int64(nLines) {
		t.Errorf("main saw %d L1 hits, want >= %d (prefetched lines)",
			c.LoadLevel[cache.LevelL1], nLines)
	}
	if c.Spawns != 1 {
		t.Errorf("Spawns = %d, want 1", c.Spawns)
	}
}

func TestJoinKillsRunningHelper(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 10
	cfg.SpawnCostHelper = 10
	// Helper loops (almost) forever.
	hb := isa.NewBuilder("spinner")
	i := hb.Imm(0)
	lim := hb.Imm(1 << 40)
	one := hb.Imm(1)
	l := hb.HereLabel()
	hb.Add(i, i, one)
	hb.BLT(i, lim, l)
	hb.Halt()

	b := isa.NewBuilder("main")
	b.Spawn(0)
	d := b.Imm(0)
	for k := 0; k < 100; k++ {
		b.AddI(d, d, 1)
	}
	b.Join() // kill
	b.Halt()

	c, _ := testRig(cfg, 1024)
	c.Load(b.MustBuild(), []*isa.Program{hb.MustBuild()})
	cycles := run(t, c, 100_000)
	if cycles >= 100_000 {
		t.Error("join did not kill the helper")
	}
	if c.HelperActive() {
		t.Error("helper still active after join")
	}
}

func TestJoinWaitWaitsForWorker(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 10
	cfg.SpawnCostHelper = 10
	// Worker stores a marker after a long delay loop.
	hb := isa.NewBuilder("worker")
	d := hb.Imm(0)
	zero := hb.Imm(0)
	n := hb.Imm(2000)
	hb.CountedLoop("work", zero, n, func(i isa.Reg) {
		hb.AddI(d, d, 1)
	})
	out := hb.Imm(100)
	hb.Store(out, 0, d)
	hb.Halt()

	b := isa.NewBuilder("main")
	b.Spawn(0)
	b.JoinWait()
	// After the join-wait the worker's result must be visible.
	outm := b.Imm(100)
	v := b.Reg()
	b.Load(v, outm, 0)
	res := b.Imm(101)
	b.Store(res, 0, v)
	b.Halt()

	c, m := testRig(cfg, 4096)
	c.Load(b.MustBuild(), []*isa.Program{hb.MustBuild()})
	run(t, c, 1_000_000)
	if got := m.LoadWord(101); got != 2000 {
		t.Errorf("join-wait read %d, want 2000 (worker finished first)", got)
	}
}

func TestSMTPartitioningHalvesROB(t *testing.T) {
	cfg := DefaultConfig()
	c, _ := testRig(cfg, 1024)
	b := isa.NewBuilder("p")
	b.Halt()
	c.Load(b.MustBuild(), nil)
	if got := c.robCap(); got != cfg.ROBSize {
		t.Errorf("single-thread ROB cap = %d, want %d", got, cfg.ROBSize)
	}
	c.threads[1].active = true
	c.threads[1].finished = false
	if got := c.robCap(); got != cfg.ROBSize/2 {
		t.Errorf("SMT ROB cap = %d, want %d", got, cfg.ROBSize/2)
	}
	if got := c.lqCap(); got != cfg.LoadQ/2 {
		t.Errorf("SMT LQ cap = %d, want %d", got, cfg.LoadQ/2)
	}
	if got := c.sqCap(); got != cfg.StoreQ/2 {
		t.Errorf("SMT SQ cap = %d, want %d", got, cfg.StoreQ/2)
	}
}

func TestHardBranchStallsDispatch(t *testing.T) {
	// A hard branch depending on a DRAM load stalls fetch; the same
	// program with a predictable branch runs much faster.
	build := func(hard bool) *isa.Program {
		b := isa.NewBuilder("hb")
		base := b.Imm(4096)
		zero := b.Imm(0)
		n := b.Imm(32)
		acc := b.Imm(0)
		b.CountedLoop("loop", zero, n, func(i isa.Reg) {
			a := b.Reg()
			sh := b.Reg()
			b.ShlI(sh, i, 3) // distinct lines
			b.Add(a, base, sh)
			v := b.Reg()
			b.Load(v, a, 0)
			skip := b.NewLabel()
			b.BLT(v, zero, skip)
			if hard {
				b.MarkHard()
			}
			b.AddI(acc, acc, 1)
			b.Bind(skip)
		})
		b.Halt()
		return b.MustBuild()
	}
	cEasy, _ := testRig(DefaultConfig(), 1<<16)
	cEasy.Load(build(false), nil)
	easy := run(t, cEasy, 1_000_000)

	cHard, _ := testRig(DefaultConfig(), 1<<16)
	cHard.Load(build(true), nil)
	hard := run(t, cHard, 1_000_000)

	if hard < easy*2 {
		t.Errorf("hard branches did not slow the loop: easy %d, hard %d", easy, hard)
	}
}

func TestRunCycleGuard(t *testing.T) {
	b := isa.NewBuilder("spin")
	i := b.Imm(0)
	lim := b.Imm(1 << 40)
	l := b.HereLabel()
	b.AddI(i, i, 1)
	b.BLT(i, lim, l)
	b.Halt()
	c, _ := testRig(DefaultConfig(), 1024)
	c.Load(b.MustBuild(), nil)
	if _, err := c.Run(10_000); err == nil {
		t.Error("cycle guard did not trip")
	}
}

func TestPrefetchDoesNotBlockRetirement(t *testing.T) {
	// A stream of prefetches to cold lines must retire at near-ALU speed:
	// they are fire-and-forget.
	b := isa.NewBuilder("pf")
	base := b.Imm(4096)
	for i := 0; i < 32; i++ {
		b.Prefetch(base, int64(i*8))
	}
	b.Halt()
	c, _ := testRig(DefaultConfig(), 1<<16)
	c.Load(b.MustBuild(), nil)
	cycles := run(t, c, 100_000)
	// 32 prefetches, 16 MSHRs: two waves of fills bound the MSHR
	// recycling, but nothing waits for data.
	if cycles > 600 {
		t.Errorf("32 prefetches took %d cycles; they should not block retirement", cycles)
	}
}
