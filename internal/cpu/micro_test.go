package cpu

import (
	"testing"

	"ghostthread/internal/isa"
)

func TestStoreQueueCapThrottlesStores(t *testing.T) {
	// With a 1-entry store queue, a burst of stores serialises on
	// commit; with a large queue it flows at near-issue speed.
	build := func() *isa.Program {
		b := isa.NewBuilder("stores")
		base := b.Imm(128)
		v := b.Imm(7)
		for i := 0; i < 200; i++ {
			b.Store(base, int64(i), v)
		}
		b.Halt()
		return b.MustBuild()
	}
	small := DefaultConfig()
	small.StoreQ = 2 // per-thread cap is halved only in SMT mode
	cs, _ := testRig(small, 4096)
	cs.Load(build(), nil)
	slow := run(t, cs, 1_000_000)

	big := DefaultConfig()
	cb, _ := testRig(big, 4096)
	cb.Load(build(), nil)
	fast := run(t, cb, 1_000_000)
	if slow <= fast {
		t.Errorf("store-queue cap had no effect: SQ=2 %d cycles, SQ=64 %d", slow, fast)
	}
}

func TestCommitWidthBoundsIPC(t *testing.T) {
	// Independent single-cycle ops: IPC is bounded by the commit width.
	build := func() *isa.Program {
		b := isa.NewBuilder("wide")
		r := make([]isa.Reg, 8)
		for i := range r {
			r[i] = b.Imm(int64(i))
		}
		for i := 0; i < 4000; i++ {
			b.AddI(r[i%8], r[i%8], 1)
		}
		b.Halt()
		return b.MustBuild()
	}
	cfg := DefaultConfig()
	cfg.CommitWidth = 2
	cfg.FetchWidth = 8
	cfg.IssueWidth = 8
	c, _ := testRig(cfg, 1024)
	c.Load(build(), nil)
	cycles := run(t, c, 1_000_000)
	ipc := float64(c.Committed(0)) / float64(cycles)
	if ipc > 2.05 {
		t.Errorf("IPC %.2f exceeds commit width 2", ipc)
	}
	if ipc < 1.5 {
		t.Errorf("IPC %.2f far below commit width 2 on independent ops", ipc)
	}
}

func TestIssueWidthBoundsThroughput(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder("issue")
		r := make([]isa.Reg, 8)
		for i := range r {
			r[i] = b.Imm(int64(i))
		}
		for i := 0; i < 4000; i++ {
			b.AddI(r[i%8], r[i%8], 1)
		}
		b.Halt()
		return b.MustBuild()
	}
	cfg := DefaultConfig()
	cfg.IssueWidth = 1
	c, _ := testRig(cfg, 1024)
	c.Load(build(), nil)
	cycles := run(t, c, 1_000_000)
	if cycles < 4000 {
		t.Errorf("4000 ops in %d cycles despite issue width 1", cycles)
	}
}

func TestSerializeInSMTLeavesSiblingRunning(t *testing.T) {
	// A helper stuck in serializes must not slow the main thread's ALU
	// work by more than the SMT fetch-sharing tax.
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 10
	cfg.SpawnCostHelper = 10

	hb := isa.NewBuilder("serspin")
	for i := 0; i < 300; i++ {
		hb.Serialize()
	}
	hb.Halt()

	build := func(spawn bool) *isa.Program {
		b := isa.NewBuilder("alu")
		if spawn {
			b.Spawn(0)
		}
		d := b.Imm(0)
		lo := b.Imm(0)
		hi := b.Imm(5000)
		b.CountedLoop("w", lo, hi, func(i isa.Reg) {
			b.AddI(d, d, 1)
		})
		if spawn {
			b.Join()
		}
		b.Halt()
		return b.MustBuild()
	}

	solo, _ := testRig(cfg, 1024)
	solo.Load(build(false), nil)
	alone := run(t, solo, 1_000_000)

	pair, _ := testRig(cfg, 1024)
	pair.Load(build(true), []*isa.Program{hb.MustBuild()})
	together := run(t, pair, 1_000_000)

	// The serializing helper consumes almost no shared resources: the
	// main thread should lose little (paper §4.3.1's key property).
	if together > alone*13/10 {
		t.Errorf("serializing helper slowed the main thread: alone %d, together %d", alone, together)
	}
}

func TestROBCapStallsDispatchNotCorrectness(t *testing.T) {
	// A tiny ROB still computes the right result, just slower.
	build := func() *isa.Program {
		b := isa.NewBuilder("sum")
		acc := b.Imm(0)
		lo := b.Imm(0)
		hi := b.Imm(1000)
		b.CountedLoop("l", lo, hi, func(i isa.Reg) {
			b.Add(acc, acc, i)
		})
		out := b.Imm(100)
		b.Store(out, 0, acc)
		b.Halt()
		return b.MustBuild()
	}
	tiny := DefaultConfig()
	tiny.ROBSize = 8
	c, m := testRig(tiny, 1024)
	c.Load(build(), nil)
	slow := run(t, c, 1_000_000)
	if got := m.LoadWord(100); got != 1000*999/2 {
		t.Errorf("tiny-ROB result %d wrong", got)
	}

	cBig, m2 := testRig(DefaultConfig(), 1024)
	cBig.Load(build(), nil)
	fast := run(t, cBig, 1_000_000)
	if got := m2.LoadWord(100); got != 1000*999/2 {
		t.Errorf("big-ROB result %d wrong", got)
	}
	if slow <= fast {
		t.Errorf("ROB size had no effect: 8-entry %d, default %d", slow, fast)
	}
}

func TestFrontendStallsCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 500
	cfg.SpawnCostHelper = 10
	hb := isa.NewBuilder("h")
	hb.Halt()
	b := isa.NewBuilder("m")
	b.Spawn(0)
	b.Halt()
	c, _ := testRig(cfg, 1024)
	c.Load(b.MustBuild(), []*isa.Program{hb.MustBuild()})
	run(t, c, 100_000)
	if c.FrontendStalls(0) < 400 {
		t.Errorf("spawn block not counted as frontend stalls: %d", c.FrontendStalls(0))
	}
}

func TestPipelineSample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 10
	cfg.SpawnCostHelper = 10
	hb := isa.NewBuilder("h")
	hd := hb.Imm(0)
	hlo := hb.Imm(0)
	hhi := hb.Imm(5000)
	hb.CountedLoop("hw", hlo, hhi, func(i isa.Reg) {
		hb.AddI(hd, hd, 1)
	})
	hb.Halt()

	b := isa.NewBuilder("m")
	b.Spawn(0)
	d := b.Imm(0)
	lo := b.Imm(0)
	hi := b.Imm(5000)
	b.CountedLoop("w", lo, hi, func(i isa.Reg) {
		b.AddI(d, d, 1)
	})
	b.JoinWait()
	b.Halt()
	c, _ := testRig(cfg, 1024)
	c.Load(b.MustBuild(), []*isa.Program{hb.MustBuild()})

	sawBoth := false
	for c.Step() {
		s := c.Sample()
		if s.Cycle != c.Now() {
			t.Fatalf("sample cycle %d != now %d", s.Cycle, c.Now())
		}
		if s.Active[0] && s.Active[1] && s.ROB[0] > 0 && s.ROB[1] > 0 {
			sawBoth = true
		}
		if s.ROB[0] > cfg.ROBSize || s.ROB[1] > cfg.ROBSize {
			t.Fatalf("ROB occupancy out of range: %+v", s)
		}
	}
	if !sawBoth {
		t.Error("never sampled both contexts active with occupancy")
	}
}
