package cpu

import (
	"strings"
	"testing"

	"ghostthread/internal/isa"
)

// delayLoop builds a program running n dependent adds then halting.
func delayLoop(n int64) *isa.Program {
	b := isa.NewBuilder("delay")
	d := b.Imm(0)
	lo := b.Imm(0)
	hi := b.Imm(n)
	b.CountedLoop("d", lo, hi, func(i isa.Reg) {
		b.AddI(d, d, 1)
	})
	b.Halt()
	return b.MustBuild()
}

func TestHelperRespawnAccumulatesStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 10
	cfg.SpawnCostHelper = 10
	// Helper: 100 serializes then halt.
	hb := isa.NewBuilder("ser100")
	for i := 0; i < 100; i++ {
		hb.Serialize()
	}
	hb.Halt()
	helper := hb.MustBuild()

	// Main spawns the helper three times, waiting for each.
	b := isa.NewBuilder("respawner")
	for k := 0; k < 3; k++ {
		b.Spawn(0)
		b.JoinWait()
	}
	b.Halt()

	c, _ := testRig(cfg, 1024)
	c.Load(b.MustBuild(), []*isa.Program{helper})
	run(t, c, 1_000_000)
	if got := c.Serializes(1); got != 300 {
		t.Errorf("accumulated helper serializes = %d, want 300", got)
	}
	if c.Spawns != 3 {
		t.Errorf("spawns = %d, want 3", c.Spawns)
	}
	if got := c.Committed(1); got != 3*101 {
		t.Errorf("accumulated helper committed = %d, want 303", got)
	}
}

func TestSegfaultReportsError(t *testing.T) {
	b := isa.NewBuilder("oob")
	a := b.Imm(1 << 40)
	d := b.Reg()
	b.Load(d, a, 0)
	b.Halt()
	c, _ := testRig(DefaultConfig(), 1024)
	c.Load(b.MustBuild(), nil)
	if _, err := c.Run(10_000); err == nil || !strings.Contains(err.Error(), "segfault") {
		t.Errorf("out-of-bounds load not reported as segfault: %v", err)
	}
}

func TestPrefetchOOBIsDropped(t *testing.T) {
	// Prefetches to unmapped addresses are harmless (dropped), as on
	// real hardware.
	b := isa.NewBuilder("pfoob")
	a := b.Imm(1 << 40)
	b.Prefetch(a, 0)
	neg := b.Imm(-500)
	b.Prefetch(neg, 0)
	b.Halt()
	c, _ := testRig(DefaultConfig(), 1024)
	c.Load(b.MustBuild(), nil)
	if _, err := c.Run(10_000); err != nil {
		t.Errorf("OOB prefetch faulted: %v", err)
	}
}

func TestHelperSegfaultKillsRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 10
	cfg.SpawnCostHelper = 10
	hb := isa.NewBuilder("badhelper")
	a := hb.Imm(1 << 40)
	d := hb.Reg()
	hb.Load(d, a, 0)
	hb.Halt()

	b := isa.NewBuilder("main")
	b.Spawn(0)
	x := b.Imm(0)
	lo := b.Imm(0)
	hi := b.Imm(10000)
	b.CountedLoop("w", lo, hi, func(i isa.Reg) {
		b.AddI(x, x, 1)
	})
	b.Join()
	b.Halt()
	c, _ := testRig(cfg, 1024)
	c.Load(b.MustBuild(), []*isa.Program{hb.MustBuild()})
	if _, err := c.Run(1_000_000); err == nil {
		t.Error("helper segfault not surfaced (the paper's compiler ghosts segfault on sssp)")
	}
}

func TestSMTThreadsShareIssueFairly(t *testing.T) {
	// Two equal ALU loops on the two contexts should each take roughly
	// twice as long as one alone (shared issue width), not starve.
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 10
	cfg.SpawnCostHelper = 10

	solo, _ := testRig(cfg, 1024)
	solo.Load(delayLoop(20000), nil)
	soloCycles := run(t, solo, 10_000_000)

	b := isa.NewBuilder("both")
	b.Spawn(0)
	d := b.Imm(0)
	lo := b.Imm(0)
	hi := b.Imm(20000)
	b.CountedLoop("d", lo, hi, func(i isa.Reg) {
		b.AddI(d, d, 1)
	})
	b.JoinWait()
	b.Halt()
	pair, _ := testRig(cfg, 1024)
	pair.Load(b.MustBuild(), []*isa.Program{delayLoop(20000)})
	pairCycles := run(t, pair, 10_000_000)

	// A serial dependent chain is latency-bound (1 add/cycle), so two
	// threads overlap almost fully; allow up to 1.6x.
	if pairCycles > soloCycles*16/10 {
		t.Errorf("SMT pair too slow: solo %d, pair %d", soloCycles, pairCycles)
	}
	if pairCycles < soloCycles {
		t.Errorf("SMT pair faster than one thread? solo %d, pair %d", soloCycles, pairCycles)
	}
}

func TestJoinWithNoHelperIsCheapNoop(t *testing.T) {
	b := isa.NewBuilder("lonejoin")
	b.Join()
	b.Halt()
	c, _ := testRig(DefaultConfig(), 1024)
	c.Load(b.MustBuild(), nil)
	cycles := run(t, c, 100_000)
	if cycles > DefaultConfig().JoinCost*2 {
		t.Errorf("bare join took %d cycles", cycles)
	}
}

func TestHelperFinishRestoresFullROB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpawnCostMain = 10
	cfg.SpawnCostHelper = 10
	// Short helper; main keeps running after it halts.
	hb := isa.NewBuilder("short")
	hb.Nop()
	hb.Halt()

	b := isa.NewBuilder("main")
	b.Spawn(0)
	d := b.Imm(0)
	lo := b.Imm(0)
	hi := b.Imm(100)
	b.CountedLoop("w", lo, hi, func(i isa.Reg) {
		b.AddI(d, d, 1)
	})
	b.Halt() // never joins: the helper halted on its own
	c, _ := testRig(cfg, 1024)
	c.Load(b.MustBuild(), []*isa.Program{hb.MustBuild()})
	run(t, c, 100_000)
	if c.HelperActive() {
		t.Error("helper still active after halting")
	}
	if got := c.robCap(); got != cfg.ROBSize {
		t.Errorf("ROB cap after helper finish = %d, want %d", got, cfg.ROBSize)
	}
}
