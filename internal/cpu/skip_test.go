package cpu

import (
	"fmt"
	"reflect"
	"testing"

	"ghostthread/internal/cache"
	"ghostthread/internal/isa"
	"ghostthread/internal/mem"
	"ghostthread/internal/obs"
)

// coreStats captures every externally observable statistic of a finished
// core, so the event-skip fast path can be proved bit-identical to the
// cycle-by-cycle reference.
type coreStats struct {
	cycles        int64
	err           string
	committed     [2]int64
	serializes    [2]int64
	serStall      [2]int64
	frontend      [2]int64
	stall         []int64
	exec          []int64
	loadLevel     [4]int64
	prefetchLevel [4]int64
	stores        int64
	prefetches    int64
	spawns        int64
	l1            [3]int64
	l2            [3]int64
	llc           [3]int64
	hwPrefetches  int64
	transfers     int64
	pfQuality     cache.PrefetchQuality
}

func cacheCounters(c *cache.Cache) [3]int64 {
	return [3]int64{c.Hits, c.InFlightHits, c.Misses}
}

func statsOf(c *Core) coreStats {
	s := coreStats{
		cycles:        c.Now(),
		committed:     [2]int64{c.Committed(0), c.Committed(1)},
		serializes:    [2]int64{c.Serializes(0), c.Serializes(1)},
		serStall:      [2]int64{c.SerializeStall(0), c.SerializeStall(1)},
		frontend:      [2]int64{c.FrontendStalls(0), c.FrontendStalls(1)},
		loadLevel:     c.LoadLevel,
		prefetchLevel: c.PrefetchLevel,
		stores:        c.Stores,
		prefetches:    c.Prefetches,
		spawns:        c.Spawns,
		l1:            cacheCounters(c.Hier().L1),
		l2:            cacheCounters(c.Hier().L2),
		llc:           cacheCounters(c.Hier().LLC),
		hwPrefetches:  c.Hier().HWPrefetches,
		transfers:     c.Hier().MC.Transfers,
		pfQuality:     c.Hier().PrefetchQuality(),
	}
	if c.Err() != nil {
		s.err = c.Err().Error()
	}
	s.stall, s.exec = c.PCProfile(0)
	return s
}

// runStepwise is the per-cycle reference loop: Run without the NextEvent
// fast-forward, preserved verbatim so the differential tests below keep a
// ground truth to compare against.
func runStepwise(c *Core, maxCycles int64) (int64, error) {
	for c.Step() {
		if c.Now() >= maxCycles {
			return c.Now(), fmt.Errorf("cpu: exceeded %d cycles", maxCycles)
		}
	}
	return c.Now(), c.Err()
}

// buildRig constructs a fresh core + memory with hardware prefetching on
// (the default hierarchy), exercising the streamer under skipping too.
func buildRig(cfg Config, memWords int64, init func(*mem.Memory)) *Core {
	m := mem.New(memWords)
	if init != nil {
		init(m)
	}
	mc := mem.NewController(mem.DefaultControllerConfig())
	llc := cache.New("LLC", cache.DefaultLLCConfig())
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig(), llc, mc)
	return New(cfg, h, m)
}

// diffCase runs one program through the stepwise reference and the
// skipping Run and asserts every statistic matches bit for bit.
func diffCase(t *testing.T, name string, cfg Config, memWords int64,
	init func(*mem.Memory), main *isa.Program, helpers []*isa.Program, maxCycles int64) {
	t.Helper()

	ref := buildRig(cfg, memWords, init)
	ref.Load(main, helpers)
	runStepwise(ref, maxCycles)
	want := statsOf(ref)

	opt := buildRig(cfg, memWords, init)
	opt.Load(main, helpers)
	opt.Run(maxCycles)
	got := statsOf(opt)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: event-skip diverged from per-cycle reference\n ref: %+v\nskip: %+v", name, want, got)
	}
}

func TestSkipEquivalenceRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		p, _ := genProgram(seed)
		diffCase(t, fmt.Sprintf("rand-%d", seed), DefaultConfig(), 2048, nil, p, nil, 50_000_000)
	}
}

// chaseInit writes a cyclic pseudo-random permutation of ptrs words into
// memory starting at base: mem[base+i] = base + perm(i), so a pointer
// chase visits every slot once before wrapping.
func chaseInit(base, ptrs, stride int64) func(*mem.Memory) {
	return func(m *mem.Memory) {
		// A full-period LCG step over [0,ptrs): i -> (a*i + 1) mod ptrs
		// with a-1 divisible by every prime factor of ptrs (ptrs is a
		// power of two, so a ≡ 1 mod 4 works).
		idx := int64(0)
		for n := int64(0); n < ptrs; n++ {
			next := (5*idx + 1) % ptrs
			m.StoreWord(base+idx*stride, base+next*stride)
			idx = next
		}
	}
}

func chaseProgram(base int64, hops int) *isa.Program {
	b := isa.NewBuilder("chase")
	ptr := b.Imm(base)
	zero := b.Imm(0)
	n := b.Imm(int64(hops))
	b.CountedLoop("hop", zero, n, func(i isa.Reg) {
		b.Load(ptr, ptr, 0)
	})
	out := b.Imm(64)
	b.Store(out, 0, ptr)
	b.Halt()
	return b.MustBuild()
}

func TestSkipEquivalenceDRAMChase(t *testing.T) {
	// Dependent DRAM misses: the exact workload skipping accelerates,
	// with long inert spans between fill events.
	base := int64(1 << 14)
	diffCase(t, "chase", DefaultConfig(), 1<<17, chaseInit(base, 1<<12, 9),
		chaseProgram(base, 2000), nil, 10_000_000)
}

func TestSkipEquivalenceSerialize(t *testing.T) {
	b := isa.NewBuilder("ser")
	a := b.Imm(8192)
	d := b.Reg()
	for i := 0; i < 6; i++ {
		b.Load(d, a, int64(i*64))
		b.Serialize()
	}
	b.Halt()
	diffCase(t, "serialize", DefaultConfig(), 1<<16, nil, b.MustBuild(), nil, 1_000_000)
}

func TestSkipEquivalenceHardBranch(t *testing.T) {
	b := isa.NewBuilder("hard")
	base := b.Imm(4096)
	zero := b.Imm(0)
	n := b.Imm(48)
	acc := b.Imm(0)
	b.CountedLoop("loop", zero, n, func(i isa.Reg) {
		sh := b.Reg()
		b.ShlI(sh, i, 3)
		a := b.Reg()
		b.Add(a, base, sh)
		v := b.Reg()
		b.Load(v, a, 0)
		skip := b.NewLabel()
		b.BLT(v, zero, skip)
		b.MarkHard()
		b.AddI(acc, acc, 1)
		b.Bind(skip)
	})
	b.Halt()
	diffCase(t, "hardbranch", DefaultConfig(), 1<<16, nil, b.MustBuild(), nil, 1_000_000)
}

func TestSkipEquivalenceGhostHelper(t *testing.T) {
	// SMT spawn/join with a prefetching ghost: exercises startAt wake-up,
	// SMT-halved structural limits, and mid-flight helper kill.
	cfg := DefaultConfig()
	base := int64(1 << 13)

	hb := isa.NewBuilder("ghost")
	hbase := hb.Imm(base)
	hptr := hb.Reg()
	hb.Mov(hptr, hbase)
	hzero := hb.Imm(0)
	hn := hb.Imm(256)
	hb.CountedLoop("pf", hzero, hn, func(i isa.Reg) {
		hb.Load(hptr, hptr, 0)
		hb.Prefetch(hptr, 0)
	})
	hb.Halt()

	b := isa.NewBuilder("main")
	b.Spawn(0)
	mbase := b.Imm(base)
	ptr := b.Reg()
	b.Mov(ptr, mbase)
	zero := b.Imm(0)
	n := b.Imm(256)
	acc := b.Imm(0)
	b.CountedLoop("walk", zero, n, func(i isa.Reg) {
		b.Load(ptr, ptr, 0)
		b.Add(acc, acc, ptr)
	})
	b.Join()
	out := b.Imm(64)
	b.Store(out, 0, acc)
	b.Halt()

	diffCase(t, "ghost", cfg, 1<<16, chaseInit(base, 1<<9, 9),
		b.MustBuild(), []*isa.Program{hb.MustBuild()}, 10_000_000)
}

// TestTraceDifferentialCore: attaching a recorder and metrics hooks to a
// core must leave every statistic bit-identical — the cpu-level version
// of the sim-package tracing differential, on the spawn/join/serialize
// rig that exercises the most emission sites (including the partial
// serialize span at a join kill).
func TestTraceDifferentialCore(t *testing.T) {
	base := int64(1 << 13)
	build := func() (*isa.Program, []*isa.Program) {
		hb := isa.NewBuilder("ghost")
		hptr := hb.Imm(base)
		hzero := hb.Imm(0)
		hn := hb.Imm(512)
		hb.CountedLoop("pf", hzero, hn, func(i isa.Reg) {
			hb.Load(hptr, hptr, 0)
			hb.Prefetch(hptr, 0)
			hb.Serialize()
		})
		hb.Halt()

		b := isa.NewBuilder("main")
		b.Spawn(0)
		ptr := b.Imm(base)
		zero := b.Imm(0)
		n := b.Imm(128)
		acc := b.Imm(0)
		b.CountedLoop("walk", zero, n, func(i isa.Reg) {
			b.Load(ptr, ptr, 0)
			b.Add(acc, acc, ptr)
		})
		b.Join()
		out := b.Imm(64)
		b.Store(out, 0, acc)
		b.Halt()
		return b.MustBuild(), []*isa.Program{hb.MustBuild()}
	}

	run := func(traced bool) (coreStats, []obs.Event) {
		main, helpers := build()
		c := buildRig(DefaultConfig(), 1<<16, chaseInit(base, 1<<9, 9))
		c.Load(main, helpers)
		var rec *obs.Recorder
		if traced {
			rec = obs.NewRecorder(1 << 16)
			c.SetTrace(rec, 0)
			c.SetMetrics(obs.DefaultCoreMetrics(obs.NewRegistry(), DefaultConfig().MSHRs, 0))
		}
		if _, err := c.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		var events []obs.Event
		if traced {
			events = rec.Events()
		}
		return statsOf(c), events
	}

	off, _ := run(false)
	on, events := run(true)
	if !reflect.DeepEqual(off, on) {
		t.Errorf("tracing changed core statistics\n off: %+v\n  on: %+v", off, on)
	}
	if len(events) == 0 {
		t.Fatal("traced run recorded no events; test proves nothing")
	}
	var spanSum int64
	for _, e := range events {
		if e.Kind == obs.KindSerialize {
			spanSum += e.Dur
		}
	}
	if want := on.serStall[0] + on.serStall[1]; spanSum != want {
		t.Errorf("serialize spans sum to %d, counter says %d", spanSum, want)
	}
}

func TestSkipEquivalenceJoinWait(t *testing.T) {
	cfg := DefaultConfig()
	hb := isa.NewBuilder("worker")
	d := hb.Imm(0)
	zero := hb.Imm(0)
	n := hb.Imm(1500)
	hb.CountedLoop("work", zero, n, func(i isa.Reg) {
		hb.AddI(d, d, 1)
	})
	out := hb.Imm(100)
	hb.Store(out, 0, d)
	hb.Halt()

	b := isa.NewBuilder("main")
	b.Spawn(0)
	b.JoinWait()
	outm := b.Imm(100)
	v := b.Reg()
	b.Load(v, outm, 0)
	res := b.Imm(101)
	b.Store(res, 0, v)
	b.Halt()

	diffCase(t, "joinwait", cfg, 4096, nil, b.MustBuild(), []*isa.Program{hb.MustBuild()}, 1_000_000)
}

func TestSkipEquivalenceCycleGuard(t *testing.T) {
	// The cycle guard must trip at the same point: the skip target is
	// capped at maxCycles-1 so the guard sees the same Now() values.
	b := isa.NewBuilder("spin")
	a := b.Imm(1 << 14)
	ptr := b.Reg()
	b.Mov(ptr, a)
	i := b.Imm(0)
	lim := b.Imm(1 << 40)
	l := b.HereLabel()
	b.Load(ptr, ptr, 0)
	b.AddI(i, i, 1)
	b.BLT(i, lim, l)
	b.Halt()
	p := b.MustBuild()
	init := chaseInit(1<<14, 1<<12, 9)

	ref := buildRig(DefaultConfig(), 1<<17, init)
	ref.Load(p, nil)
	refCycles, refErr := runStepwise(ref, 20_000)

	opt := buildRig(DefaultConfig(), 1<<17, init)
	opt.Load(p, nil)
	optCycles, optErr := opt.Run(20_000)

	if (refErr == nil) != (optErr == nil) {
		t.Fatalf("guard mismatch: ref err=%v, skip err=%v", refErr, optErr)
	}
	if refErr == nil {
		t.Fatal("expected the cycle guard to trip")
	}
	if refCycles != optCycles {
		t.Errorf("guard tripped at %d (skip) vs %d (ref)", optCycles, refCycles)
	}
}

// BenchmarkCoreStep measures simulator throughput on a DRAM-bound
// pointer chase whose working set (512 KiB) dwarfs the 32 KiB LLC —
// the event-skip fast path must deliver >= 1.5x the per-cycle loop.
func BenchmarkCoreStep(b *testing.B) {
	const (
		base  = int64(1 << 15)
		ptrs  = int64(1 << 16) // 512 KiB working set at stride 1
		hops  = 20_000
		guard = int64(200_000_000)
	)
	init := chaseInit(base, ptrs, 1)
	prog := chaseProgram(base, hops)

	bench := func(b *testing.B, skip bool) {
		var simCycles int64
		for i := 0; i < b.N; i++ {
			c := buildRig(DefaultConfig(), 1<<18, init)
			c.Load(prog, nil)
			var err error
			if skip {
				_, err = c.Run(guard)
			} else {
				_, err = runStepwise(c, guard)
			}
			if err != nil {
				b.Fatal(err)
			}
			simCycles += c.Now()
		}
		b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "simcycles/s")
	}
	b.Run("event-skip", func(b *testing.B) { bench(b, true) })
	b.Run("cycle-step", func(b *testing.B) { bench(b, false) })
}
