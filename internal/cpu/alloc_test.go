package cpu

import "testing"

// TestStepZeroAllocs enforces the SoA/arena contract on the hot path:
// once Load has sized the per-thread slice arrays and the event wheel,
// Core.Step must not touch the heap. A regression here (a closure
// capture, an interface boxing, a slice regrowth inside the steady
// state) silently costs double-digit percent throughput, so it fails the
// build instead of waiting for a profile.
func TestStepZeroAllocs(t *testing.T) {
	base := int64(1 << 14)
	for _, mode := range []struct {
		name      string
		interpret bool
	}{
		{"superblock", false},
		{"interpret", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Interpret = mode.interpret
			c := buildRig(cfg, 1<<17, chaseInit(base, 1<<12, 9))
			c.Load(chaseProgram(base, 200_000), nil)
			// Warm up past Load-time sizing and any one-time wheel growth.
			for i := 0; i < 5_000; i++ {
				if !c.Step() {
					t.Fatal("program finished during warm-up")
				}
			}
			if c.Err() != nil {
				t.Fatal(c.Err())
			}
			allocs := testing.AllocsPerRun(2_000, func() {
				if !c.Step() {
					t.Fatal("program finished inside the measurement window")
				}
			})
			if allocs != 0 {
				t.Errorf("%s: Core.Step allocates %.1f objects/step, want 0", mode.name, allocs)
			}
		})
	}
}
