package cpu

import "sync"

// StepGate makes concurrent per-core stepping bit-identical to serial
// stepping. Within one machine cycle, cores step in parallel but their
// interactions with shared state (the LLC, the memory controller, the
// functional memory image) must happen in exactly the order the serial
// loop would produce: all of core 0's accesses, then all of core 1's,
// and so on. The gate enforces that with a turn token that advances in
// rank order:
//
//   - a core's first shared access in a cycle blocks until every
//     lower-ranked core has finished its entire step (acquire);
//   - a core finishing its step waits for its own turn, then passes the
//     token on (finish) — so a core that touched nothing shared still
//     hands over in order, and a core whose whole step is private can
//     run fully overlapped with its neighbours' compute.
//
// Ranks are assigned per cycle, ascending over the cores stepping that
// cycle. The mutex/condvar pair also provides the happens-before edges
// the race detector needs along the shared-access chain.
type StepGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	pos  int // rank whose turn it is
}

// NewStepGate returns a gate ready for its first cycle.
func NewStepGate() *StepGate {
	g := &StepGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Begin resets the turn sequence for a new cycle. Call only while no
// worker is stepping.
func (g *StepGate) Begin() { g.pos = 0 }

// acquire blocks until every lower-ranked core has finished its step.
// The turn then belongs to rank until its own finish call.
func (g *StepGate) acquire(rank int) {
	g.mu.Lock()
	for g.pos != rank {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// finish marks rank's step complete and passes the turn to rank+1,
// waiting for rank's own turn first so turns advance strictly in order.
func (g *StepGate) finish(rank int) {
	g.mu.Lock()
	for g.pos != rank {
		g.cond.Wait()
	}
	g.pos = rank + 1
	g.cond.Broadcast()
	g.mu.Unlock()
}
