package cpu

// event kinds processed by the core's timing wheel.
const (
	evComplete     = iota // an in-flight instruction finishes execution
	evMSHRRelease         // an outstanding L1 miss fill arrives; free the MSHR
	evFaultPreempt        // a ghost-preemption window begins (internal/fault)
	evFaultKill           // the one-shot ghost-kill fault fires
)

type event struct {
	at     int64
	thread int8
	kind   int8
	gen    uint32 // thread generation; stale events are ignored
	idx    int32  // ROB slot index (evComplete)
}

// eventHeap is a binary min-heap ordered by event.at. A hand-rolled heap
// avoids container/heap's interface costs on the simulator's hot path.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ev[p].at <= h.ev[i].at {
			break
		}
		h.ev[p], h.ev[i] = h.ev[i], h.ev[p]
		i = p
	}
}

func (h *eventHeap) peekAt() (int64, bool) {
	if len(h.ev) == 0 {
		return 0, false
	}
	return h.ev[0].at, true
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.ev[l].at < h.ev[s].at {
			s = l
		}
		if r < n && h.ev[r].at < h.ev[s].at {
			s = r
		}
		if s == i {
			break
		}
		h.ev[i], h.ev[s] = h.ev[s], h.ev[i]
		i = s
	}
	return top
}

func (h *eventHeap) len() int { return len(h.ev) }
