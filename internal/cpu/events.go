package cpu

import "math/bits"

// event kinds processed by the core's timing wheel. The analytic engine
// fixes every instruction's issue and completion cycles at dispatch, so
// the wheel carries only asynchronous triggers: the fault injector's and
// the adaptive governor's (internal/gov), which both ride the same
// deterministic mechanism.
const (
	evFaultPreempt = iota // a ghost-preemption window begins (internal/fault)
	evFaultKill           // the one-shot ghost-kill fault fires
	evGovKill             // the governor retires a negative-benefit ghost
	evGovRespawn          // the governor re-spawns the ghost with fresh live-ins
)

type event struct {
	at   int64
	kind int8
}

const (
	wheelBits  = 10
	wheelSize  = 1 << wheelBits // cycles of look-ahead the ring covers
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64 // occupancy-bitmap words
)

// eventWheel is the core's timing wheel: a ring of wheelSize per-cycle
// buckets plus an overflow min-heap for the rare event scheduled beyond
// the ring's horizon (a distant fault trigger, mostly).
//
// Two invariants make it both O(1) and deterministic:
//
//   - Every ring event's deadline lies in (now, now+wheelSize], so each
//     occupied bucket holds events of exactly one absolute cycle (two
//     distinct deadlines in one bucket would have to differ by a multiple
//     of wheelSize, putting one of them outside the window). Deadlines
//     never lapse unprocessed: the step loop drains the due bucket every
//     stepped cycle and SkipTo never jumps past peekAt.
//
//   - Each bucket is a slice drained and refilled in FIFO order, so
//     same-cycle events fire in exactly the order they were scheduled —
//     a deterministic rule, unlike a binary heap's history-dependent
//     tie-breaking. The bucket slices double as the event arena: takeDue
//     truncates them in place and push appends, so after warm-up the
//     wheel performs no allocation at all.
//
// Far events are never migrated onto the ring: they fire directly from
// the heap when due, ordered after the due bucket's events. Migrating
// would make same-cycle order depend on *when* the migration ran — under
// event skipping a far event crosses the horizon at a later stepped cycle
// than under per-cycle stepping, so it would interleave differently with
// ring pushes and break the bit-identity of the two stepping modes.
type eventWheel struct {
	buckets [wheelSize][]event
	occ     [wheelWords]uint64 // bit b set ⇔ buckets[b] non-empty
	near    int                // events currently on the ring
	far     []event            // min-heap (by at) beyond the horizon
}

// reset discards all pending events, keeping bucket capacity.
func (w *eventWheel) reset() {
	if w.near > 0 {
		for i := range w.buckets {
			w.buckets[i] = w.buckets[i][:0]
		}
	}
	w.occ = [wheelWords]uint64{}
	w.near = 0
	w.far = w.far[:0]
}

// push schedules e, which must satisfy e.at > now.
func (w *eventWheel) push(now int64, e event) {
	if e.at-now > wheelSize {
		w.farPush(e)
		return
	}
	b := int(uint64(e.at) & wheelMask)
	w.buckets[b] = append(w.buckets[b], e)
	w.occ[b>>6] |= 1 << uint(b&63)
	w.near++
}

// peekAt returns the earliest pending deadline. It must be called between
// steps, when every pending event satisfies at > now.
func (w *eventWheel) peekAt(now int64) (int64, bool) {
	ring := int64(0)
	haveRing := false
	if w.near > 0 {
		// Scan the occupancy bitmap from bucket (now+1) & mask forward.
		start := int(uint64(now+1) & wheelMask)
		wi := start >> 6
		word := w.occ[wi] &^ (1<<uint(start&63) - 1)
		for k := 0; k <= wheelWords; k++ {
			if word != 0 {
				b := wi<<6 | bits.TrailingZeros64(word)
				d := (b - start) & wheelMask
				ring = now + 1 + int64(d)
				haveRing = true
				break
			}
			wi = (wi + 1) & (wheelWords - 1)
			word = w.occ[wi]
			if wi == start>>6 {
				word &= 1<<uint(start&63) - 1 // wrapped: only bits before start
			}
		}
	}
	if len(w.far) == 0 {
		return ring, haveRing
	}
	if !haveRing || w.far[0].at < ring {
		return w.far[0].at, true
	}
	return ring, true
}

// takeDue moves every event due at exactly cycle now into scratch
// (reusing its capacity) and returns it: the due ring bucket in FIFO
// order, then any due far events. Handlers may push new events while
// iterating the result; a push landing in the same bucket (deadline
// now+wheelSize) is a future event and stays put because the due events
// were detached first.
func (w *eventWheel) takeDue(now int64, scratch []event) []event {
	scratch = scratch[:0]
	b := int(uint64(now) & wheelMask)
	if bucket := w.buckets[b]; len(bucket) > 0 {
		scratch = append(scratch, bucket...)
		w.buckets[b] = bucket[:0]
		w.occ[b>>6] &^= 1 << uint(b&63)
		w.near -= len(scratch)
	}
	for len(w.far) > 0 && w.far[0].at <= now {
		scratch = append(scratch, w.farPop())
	}
	return scratch
}

func (w *eventWheel) len() int { return w.near + len(w.far) }

// farPush/farPop maintain the overflow min-heap ordered by event.at.

func (w *eventWheel) farPush(e event) {
	w.far = append(w.far, e)
	i := len(w.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if w.far[p].at <= w.far[i].at {
			break
		}
		w.far[p], w.far[i] = w.far[i], w.far[p]
		i = p
	}
}

func (w *eventWheel) farPop() event {
	top := w.far[0]
	n := len(w.far) - 1
	w.far[0] = w.far[n]
	w.far = w.far[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && w.far[l].at < w.far[s].at {
			s = l
		}
		if r < n && w.far[r].at < w.far[s].at {
			s = r
		}
		if s == i {
			break
		}
		w.far[i], w.far[s] = w.far[s], w.far[i]
		i = s
	}
	return top
}
