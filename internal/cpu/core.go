package cpu

import (
	"fmt"
	"math"

	"ghostthread/internal/cache"
	"ghostthread/internal/fault"
	"ghostthread/internal/isa"
	"ghostthread/internal/mem"
	"ghostthread/internal/obs"
)

// entry states.
const (
	stWaiting   = iota // dispatched, operands outstanding
	stReady            // operands available, awaiting an issue slot
	stIssued           // executing
	stDone             // execution complete, awaiting commit
	stSerialize        // serialize: completes at the ROB head (drain)
	stDirect           // spawn/join/halt/nop-like: completes without an issue slot
)

type robEntry struct {
	pc         int32
	op         isa.Op
	flags      isa.Flag
	state      uint8
	notReady   int16
	inLQ, inSQ bool
	completeAt int64
	addr       int64 // memory address (mem ops), computed at dispatch
}

// thread is one SMT hardware context.
type thread struct {
	id   int
	gen  uint32
	prog *isa.Program

	active   bool
	startAt  int64
	halted   bool // halt dispatched
	finished bool // halted and ROB drained

	pc       int
	regs     [isa.NumRegs]int64
	producer [isa.NumRegs]int32 // ROB slot producing the register, -1 if value final

	rob        []robEntry
	deps       [][]int32 // per-slot wakeup lists (reused)
	head, tail int
	count      int

	readyQ []int32

	lq, sq            int
	fetchBlockedUntil int64
	serializeBlocked  bool
	waitBranch        int32 // ROB slot of the unresolved hard branch stalling dispatch, or -1

	// Per-run statistics.
	committed      int64
	serializes     int64
	serializeStall int64 // Σ (commit − dispatch) cycles over retired serializes
	frontendStall  int64 // cycles active with an empty ROB (fetch-blocked)
	stallPC        []int64
	execPC         []int64

	// Serialize bookkeeping: dispatch cycle and pc of the serialize
	// currently blocking fetch (meaningful while serializeBlocked).
	serStart int64
	serPC    int32

	// Tracing-only state (mutated only when a recorder is attached, and
	// never read by the timing model or statistics).
	robStallStart int64 // open full-window stall span start, -1 when none
	robStallPC    int32
	inSkip        bool // inside a FlagSyncSkip run (dedups skip instants)
}

func (t *thread) reset(prog *isa.Program, robSize int, startAt int64) {
	t.gen++
	t.prog = prog
	t.active = prog != nil
	t.startAt = startAt
	t.halted = false
	t.finished = false
	t.pc = 0
	for i := range t.producer {
		t.producer[i] = -1
	}
	if cap(t.rob) < robSize {
		t.rob = make([]robEntry, robSize)
		t.deps = make([][]int32, robSize)
	}
	t.rob = t.rob[:robSize]
	t.deps = t.deps[:robSize]
	t.head, t.tail, t.count = 0, 0, 0
	t.readyQ = t.readyQ[:0]
	t.lq, t.sq = 0, 0
	t.fetchBlockedUntil = 0
	t.serializeBlocked = false
	t.waitBranch = -1
	t.committed = 0
	t.serializes = 0
	t.serializeStall = 0
	t.frontendStall = 0
	t.serStart, t.serPC = 0, 0
	t.robStallStart, t.robStallPC = -1, 0
	t.inSkip = false
	if prog != nil {
		t.stallPC = make([]int64, len(prog.Code))
		t.execPC = make([]int64, len(prog.Code))
	}
}

// Core is one physical core with two SMT contexts sharing a cache
// hierarchy, issue bandwidth, and MSHRs.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	mem  *mem.Memory

	helpers []*isa.Program
	threads [2]thread
	now     int64
	events  eventHeap

	mshrInUse int

	// Event-skip bookkeeping (see NextEvent): issueStarved records that
	// the last issue() left ready work unissued because the shared issue
	// ports ran out; dispatchedReady records that the last dispatch()
	// inserted entries that are already ready but were dispatched after
	// this cycle's issue pass ran. Either means the very next cycle can
	// make progress without an event.
	issueStarved    bool
	dispatchedReady bool

	// Statistics.
	LoadLevel     [4]int64 // demand loads + atomics satisfied per level
	PrefetchLevel [4]int64 // prefetches satisfied per level
	Stores        int64
	Prefetches    int64
	Spawns        int64

	// Accumulated per-context counters surviving helper re-spawns.
	accCommitted  [2]int64
	accSerializes [2]int64
	accSerStall   [2]int64
	accFrontend   [2]int64

	// Observability (nil = off; see internal/obs). Emission sites guard
	// with a nil check so the disabled hot path costs one branch, and
	// neither tracing nor metrics ever feeds back into timing or
	// statistics — a traced run is bit-identical to an untraced one.
	trace      *obs.Recorder
	met        *obs.CoreMetrics
	id         uint8 // core id stamped into trace events
	ghostStart int64 // spawn-dispatch cycle of the live helper (tracing)

	// Shadow oracle (nil = off; see shadow.go). Taps sit in dispatch,
	// which only runs at stepped cycles, so the counters are identical
	// across stepping modes; the oracle never feeds back into timing.
	shadow *shadowOracle

	// Fault injection (nil = off; see internal/fault). Draw points are
	// event processing, dispatch, and issue — all of which run at the same
	// cycles under per-cycle stepping and event skipping, so a faulted run
	// is bit-identical across step modes.
	fault *fault.Injector

	err error
}

// New builds a core over the given hierarchy and memory.
func New(cfg Config, hier *cache.Hierarchy, m *mem.Memory) *Core {
	c := &Core{cfg: cfg, hier: hier, mem: m}
	c.threads[0].id = 0
	c.threads[1].id = 1
	return c
}

// Load installs the main program on context 0 and records the helper
// programs that OpSpawn can activate on context 1.
func (c *Core) Load(main *isa.Program, helpers []*isa.Program) {
	c.helpers = helpers
	c.threads[0].reset(main, c.cfg.ROBSize, 0)
	c.threads[1].reset(nil, c.cfg.ROBSize, 0)
	c.accCommitted = [2]int64{}
	c.accSerializes = [2]int64{}
	c.accSerStall = [2]int64{}
	c.accFrontend = [2]int64{}
	c.ghostStart = 0
	c.now = 0
	c.events.ev = c.events.ev[:0]
	c.mshrInUse = 0
	c.issueStarved = false
	c.dispatchedReady = false
	c.err = nil
	if c.fault != nil {
		// Seed the timing wheel with the fault triggers that need one: the
		// first preemption window and the one-shot ghost kill. Putting them
		// on the wheel (instead of polling) is what lets injection compose
		// with the event-skip fast path.
		if gap := c.fault.NextPreemptGap(); gap > 0 {
			c.events.push(event{at: gap, kind: evFaultPreempt})
		}
		if at := c.fault.Config().GhostKillAt; at > 0 {
			c.events.push(event{at: at, kind: evFaultKill})
		}
	}
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Err returns the first simulation error (bad program behaviour), if any.
func (c *Core) Err() error { return c.err }

// Done reports whether the main thread has finished (and any helper is
// inactive or finished).
func (c *Core) Done() bool {
	if c.err != nil {
		return true
	}
	t0, t1 := &c.threads[0], &c.threads[1]
	return t0.finished && (!t1.active || t1.finished)
}

// smtActive reports whether both contexts are competing for resources.
func (c *Core) smtActive() bool {
	t1 := &c.threads[1]
	return t1.active && !t1.finished
}

func (c *Core) robCap() int {
	if c.smtActive() {
		return c.cfg.ROBSize / 2
	}
	return c.cfg.ROBSize
}

func (c *Core) lqCap() int {
	if c.smtActive() {
		return c.cfg.LoadQ / 2
	}
	return c.cfg.LoadQ
}

func (c *Core) sqCap() int {
	if c.smtActive() {
		return c.cfg.StoreQ / 2
	}
	return c.cfg.StoreQ
}

// Step advances the core by one cycle: process completions, commit,
// issue, then dispatch (reverse pipeline order). It returns false once
// the core is done.
func (c *Core) Step() bool {
	if c.Done() {
		return false
	}
	c.now++
	c.processEvents()
	for i := range c.threads {
		c.commit(&c.threads[i])
	}
	c.issue()
	c.dispatch()
	if c.trace != nil {
		c.traceStalls()
	}
	return !c.Done()
}

// traceStalls runs at the end of every stepped cycle when tracing is on:
// it opens a full-window stall span when a context's reorder window is
// full behind an uncommittable head and closes it when the condition
// clears. The predicate is a pure function of pipeline state, and state
// only changes at stepped cycles, so the spans come out identical under
// per-cycle stepping and the event-skip fast path — a SkipTo jump cannot
// land inside a state transition (see NextEvent's contract).
func (c *Core) traceStalls() {
	for i := range c.threads {
		t := &c.threads[i]
		blocked := false
		var pc int32
		if t.active && !t.finished && t.count >= c.robCap() {
			h := &t.rob[t.head]
			if h.state == stWaiting || h.state == stReady || h.state == stIssued {
				blocked = true
				pc = h.pc
			}
		}
		switch {
		case blocked && t.robStallStart < 0:
			t.robStallStart = c.now
			t.robStallPC = pc
		case !blocked && t.robStallStart >= 0:
			c.closeROBStall(t)
		}
	}
}

// closeROBStall emits the open full-window stall span of t, ending now.
func (c *Core) closeROBStall(t *thread) {
	if dur := c.now - t.robStallStart; dur > 0 {
		c.trace.Emit(obs.Event{Cycle: t.robStallStart, Dur: dur, Arg: int64(t.robStallPC),
			Kind: obs.KindROBStall, Core: c.id, Ctx: uint8(t.id)})
	}
	t.robStallStart = -1
}

// Run steps until completion or maxCycles, returning the cycle count.
// Between steps it fast-forwards over spans NextEvent proves inert, so a
// DRAM-bound run costs one step per event rather than one per cycle; the
// returned cycle count and every statistic are identical to stepping
// cycle by cycle (SkipTo accrues the skipped cycles' stall accounting).
func (c *Core) Run(maxCycles int64) (int64, error) {
	for c.Step() {
		if c.now >= maxCycles {
			return c.now, fmt.Errorf("cpu: %q exceeded %d cycles", c.threads[0].prog.Name, maxCycles)
		}
		if next := c.NextEvent(); next > c.now+1 {
			c.SkipTo(min(next-1, maxCycles-1))
		}
	}
	return c.now, c.err
}

// never is NextEvent's "no future event" sentinel.
const never = math.MaxInt64

// NextEvent returns the earliest cycle, strictly after Now(), at which
// any core state can change — or math.MaxInt64 when the core is done (or
// deadlocked). Calling Step for every cycle in (Now(), NextEvent()) would
// only accrue stall statistics; SkipTo accrues them in O(1), which is
// what lets the run loop jump straight to the next event.
//
// It must be called between Steps (after Step has returned), when these
// invariants hold and every possible state change is one of:
//
//   - a timing-wheel event firing (instruction completion, MSHR release);
//   - the serialize instruction at a ROB head reaching its drain
//     deadline (tracked in its completeAt, not on the wheel);
//   - leftover ready work: the last issue pass ran out of ports
//     (issueStarved), or dispatch inserted already-ready entries after
//     the issue pass (dispatchedReady) — both can issue next cycle;
//   - a committable ROB head (commit-width limits can leave one);
//   - dispatch proceeding once its fetch barriers (thread start, branch
//     redirect, spawn/join costs) expire.
//
// Ready entries held back by a structural hazard (an L1 miss with all
// MSHRs taken) need no wake-up of their own: the hazard can only clear
// through an MSHR-release event already on the wheel, and any same-cycle
// cache install that could turn their miss into a hit comes from an
// instruction that issued this cycle — which pushed its own completion
// event at no later than Now()+1. Dispatch blocked on a full ROB or
// load/store queue likewise only unblocks via commit or completion,
// both covered above.
func (c *Core) NextEvent() int64 {
	if c.Done() {
		return never
	}
	next := int64(never)
	if at, ok := c.events.peekAt(); ok && at < next {
		next = at
	}
	if c.issueStarved || c.dispatchedReady {
		next = c.now + 1
	}
	for i := range c.threads {
		t := &c.threads[i]
		if !t.active || t.finished {
			continue
		}
		// Commit progress not driven by the timing wheel.
		if t.count > 0 {
			e := &t.rob[t.head]
			switch {
			case e.state == stDone:
				next = min(next, c.now+1) // commit-width leftover
			case e.state == stSerialize:
				if e.completeAt == 0 {
					next = min(next, c.now+1) // drain deadline set at the head
				} else {
					next = min(next, e.completeAt)
				}
			}
		}
		// Dispatch progress. Threads blocked mid-pipeline (serialize
		// drain, unresolved hard branch, full ROB/LQ/SQ, join-wait) only
		// unblock via events handled above; everything else can dispatch
		// as soon as the fetch barriers expire.
		if t.halted || t.serializeBlocked || t.waitBranch >= 0 {
			continue
		}
		if t.count >= c.robCap() {
			continue
		}
		if t.pc >= 0 && t.pc < len(t.prog.Code) {
			in := &t.prog.Code[t.pc]
			switch in.Op {
			case isa.OpLoad, isa.OpAtomicAdd, isa.OpPrefetch:
				if t.lq >= c.lqCap() {
					continue
				}
			case isa.OpStore:
				if t.sq >= c.sqCap() {
					continue
				}
			case isa.OpJoin:
				if in.Imm == JoinWaitImm && c.smtActive() {
					continue
				}
			}
		}
		next = min(next, max(c.now+1, max(t.startAt, t.fetchBlockedUntil)))
	}
	return next
}

// SkipTo advances the clock to target without stepping, accruing exactly
// the statistics the skipped cycles would have recorded: a thread with a
// blocked ROB head charges its stall-attribution counter every cycle, and
// a thread with an empty ROB charges frontend stalls from its start cycle
// on. The caller must ensure target < NextEvent() (no state other than
// these counters may change over the span); SkipTo(target <= Now()) is a
// no-op.
func (c *Core) SkipTo(target int64) {
	if target <= c.now {
		return
	}
	span := target - c.now
	for i := range c.threads {
		t := &c.threads[i]
		if !t.active || t.finished {
			continue
		}
		if t.count == 0 {
			// An empty ROB with halted set would already be finished, so
			// this thread is fetch-blocked or not yet started: it counts
			// frontend-stall cycles once its start cycle is reached.
			if from := max(c.now+1, t.startAt); from <= target {
				t.frontendStall += target - from + 1
			}
			continue
		}
		// The head cannot commit anywhere in the span (otherwise
		// NextEvent would have stopped the skip sooner), so every skipped
		// cycle charges the instruction blocking it.
		t.stallPC[t.rob[t.head].pc] += span
	}
	c.now = target
}

func (c *Core) processEvents() {
	for {
		at, ok := c.events.peekAt()
		if !ok || at > c.now {
			return
		}
		e := c.events.pop()
		switch e.kind {
		case evMSHRRelease:
			c.mshrInUse--
			continue
		case evFaultPreempt:
			c.applyPreempt()
			continue
		case evFaultKill:
			if c.deactivateHelper() {
				c.fault.Stats.Kills++
			}
			continue
		}
		t := &c.threads[e.thread]
		if e.gen != t.gen {
			continue // the thread was re-spawned/killed; stale completion
		}
		c.complete(t, e.idx)
	}
}

// applyPreempt handles one evFaultPreempt trigger: the OS context-switches
// the sibling SMT context away for a drawn window, so the helper fetches
// nothing while its in-flight instructions drain. The window length and
// the gap to the next trigger are always drawn — whether or not a helper
// is live — so the schedule is a function of the seed alone and never
// shifts with workload behaviour.
func (c *Core) applyPreempt() {
	win := c.fault.PreemptWindow()
	gap := c.fault.NextPreemptGap()
	h := &c.threads[1]
	if h.active && !h.finished {
		c.fault.Stats.Preemptions++
		c.fault.Stats.PreemptedCycles += win
		if bl := c.now + win; bl > h.fetchBlockedUntil {
			h.fetchBlockedUntil = bl
		}
	}
	c.events.push(event{at: c.now + win + gap, kind: evFaultPreempt})
}

// deactivateHelper kills the live helper context mid-flight — the shared
// path of the default join and the ghost-kill fault (ghost threads modify
// no application state, so an asynchronous kill is architecturally safe).
// It settles the partial serialize-stall window and closes open trace
// spans, then invalidates in-flight completions. Reports whether a helper
// was actually live.
func (c *Core) deactivateHelper() bool {
	h := &c.threads[1]
	if !h.active || h.finished {
		return false
	}
	if h.serializeBlocked {
		// The kill interrupts a serialize throttle mid-flight: account the
		// partial stall so the counter (and the span sum) covers every
		// throttled cycle.
		dur := c.now - h.serStart
		h.serializeStall += dur
		if c.met != nil && c.met.SerializeStall != nil {
			c.met.SerializeStall.Observe(dur)
		}
		if c.trace != nil && dur > 0 {
			c.trace.Emit(obs.Event{Cycle: h.serStart, Dur: dur, Arg: int64(h.serPC),
				Kind: obs.KindSerialize, Core: c.id, Ctx: 1})
		}
	}
	if c.trace != nil {
		if h.robStallStart >= 0 {
			c.closeROBStall(h)
		}
		if dur := c.now - c.ghostStart; dur > 0 {
			c.trace.Emit(obs.Event{Cycle: c.ghostStart, Dur: dur,
				Kind: obs.KindGhostLife, Core: c.id, Ctx: 1})
		}
	}
	h.active = false
	h.finished = true
	h.gen++ // invalidate its in-flight completions
	return true
}

// complete marks entry idx done and wakes its dependents.
func (c *Core) complete(t *thread, idx int32) {
	e := &t.rob[idx]
	if e.state == stDone {
		return
	}
	e.state = stDone
	switch e.op {
	case isa.OpLoad, isa.OpAtomicAdd, isa.OpPrefetch:
		t.lq--
	}
	if e.op.HasDst() {
		in := &t.prog.Code[e.pc]
		if t.producer[in.Dst] == idx {
			t.producer[in.Dst] = -1
		}
	}
	for _, d := range t.deps[idx] {
		de := &t.rob[d]
		de.notReady--
		if de.notReady == 0 && de.state == stWaiting {
			de.state = stReady
			t.readyQ = append(t.readyQ, d)
		}
	}
	t.deps[idx] = t.deps[idx][:0]
	if t.waitBranch == idx {
		t.waitBranch = -1
		bl := c.now + c.cfg.BranchPenalty
		if bl > t.fetchBlockedUntil {
			t.fetchBlockedUntil = bl
		}
	}
}

func (c *Core) commit(t *thread) {
	if !t.active || t.finished {
		return
	}
	if t.count == 0 {
		if t.halted {
			t.finished = true
			c.traceGhostDrain(t)
		} else if c.now >= t.startAt {
			t.frontendStall++
		}
		return
	}
	for w := 0; w < c.cfg.CommitWidth && t.count > 0; w++ {
		e := &t.rob[t.head]
		if e.state == stSerialize {
			if e.completeAt == 0 {
				// The serialize has drained: all older instructions have
				// committed. It now pays its microcode/restart cost.
				e.completeAt = c.now + c.cfg.SerializeLat
			}
			if c.now < e.completeAt {
				t.stallPC[e.pc]++
				return
			}
			t.serializeBlocked = false
			t.serializes++
			dur := c.now - t.serStart
			t.serializeStall += dur
			if c.met != nil && c.met.SerializeStall != nil {
				c.met.SerializeStall.Observe(dur)
			}
			if c.trace != nil && dur > 0 {
				c.trace.Emit(obs.Event{Cycle: t.serStart, Dur: dur, Arg: int64(e.pc),
					Kind: obs.KindSerialize, Core: c.id, Ctx: uint8(t.id)})
			}
		} else if e.state != stDone {
			if w == 0 {
				t.stallPC[e.pc]++
			}
			return
		}
		if e.op == isa.OpStore {
			t.sq--
		}
		t.execPC[e.pc]++
		t.committed++
		t.head = (t.head + 1) % len(t.rob)
		t.count--
	}
	if t.count == 0 && t.halted {
		t.finished = true
		c.traceGhostDrain(t)
	}
}

// traceGhostDrain closes the ghost-life span when the helper context
// finishes by draining naturally.
func (c *Core) traceGhostDrain(t *thread) {
	if c.trace == nil || t.id != 1 {
		return
	}
	if dur := c.now - c.ghostStart; dur > 0 {
		c.trace.Emit(obs.Event{Cycle: c.ghostStart, Dur: dur,
			Kind: obs.KindGhostLife, Core: c.id, Ctx: 1})
	}
}

// issue picks ready instructions up to the shared issue width,
// alternating thread priority each cycle.
func (c *Core) issue() {
	slots := c.cfg.IssueWidth
	c.issueStarved = false
	first := int(c.now & 1)
	for k := 0; k < 2; k++ {
		t := &c.threads[(first+k)&1]
		if !t.active || t.finished || len(t.readyQ) == 0 {
			continue
		}
		if slots == 0 {
			c.issueStarved = true
			continue
		}
		q := t.readyQ
		kept := q[:0]
		for qi := 0; qi < len(q); qi++ {
			idx := q[qi]
			if slots == 0 {
				kept = append(kept, idx)
				c.issueStarved = true
				continue
			}
			e := &t.rob[idx]
			if !c.tryIssue(t, idx, e) {
				kept = append(kept, idx) // structural hazard; event-driven retry
				continue
			}
			slots--
		}
		t.readyQ = kept
	}
}

// tryIssue begins execution of a ready entry; false means a structural
// hazard (MSHRs full) blocked it.
func (c *Core) tryIssue(t *thread, idx int32, e *robEntry) bool {
	var completeAt int64
	switch e.op {
	case isa.OpLoad, isa.OpAtomicAdd:
		wouldMiss := c.hier.WouldMissL1(e.addr, c.now)
		if wouldMiss && c.mshrInUse >= c.cfg.MSHRs {
			return false
		}
		res := c.hier.DemandAccess(e.addr, c.now)
		c.LoadLevel[res.Level]++
		if res.NewMiss {
			c.mshrInUse++
			c.events.push(event{at: res.CompleteAt, kind: evMSHRRelease})
			c.observeFill(t, e.addr, res)
		}
		completeAt = res.CompleteAt
	case isa.OpPrefetch:
		wouldMiss := c.hier.WouldMissL1(e.addr, c.now)
		if wouldMiss && c.mshrInUse >= c.cfg.MSHRs {
			return false
		}
		// The fate draw happens only after the structural check passed, so
		// a hazard-blocked retry never consumes an extra draw.
		var pfDrop bool
		var pfDelay int64
		if c.fault != nil {
			pfDrop, pfDelay = c.fault.PrefetchFate()
		}
		if pfDrop {
			// Dropped in the memory system: the instruction still retires
			// (software prefetches are hints), but no fill starts.
			c.Prefetches++
		} else {
			res := c.hier.PrefetchAccess(e.addr, c.now)
			if pfDelay > 0 && res.NewMiss {
				res.CompleteAt += pfDelay
				c.hier.DelayFill(e.addr, res.CompleteAt)
			}
			c.PrefetchLevel[res.Level]++
			c.Prefetches++
			if c.trace != nil {
				c.trace.Emit(obs.Event{Cycle: c.now, Arg: e.addr, Kind: obs.KindPrefetch,
					Core: c.id, Ctx: uint8(t.id), Level: uint8(res.Level)})
			}
			if res.NewMiss {
				c.mshrInUse++
				c.events.push(event{at: res.CompleteAt, kind: evMSHRRelease})
				c.observeFill(t, e.addr, res)
			}
		}
		completeAt = c.now + 1 // fire-and-forget: retires without the fill
	case isa.OpStore:
		// The store buffer absorbs the store; the access still moves
		// cache state and consumes bandwidth on a miss (RFO).
		c.hier.DemandAccess(e.addr, c.now)
		c.Stores++
		completeAt = c.now + 1
	case isa.OpMul:
		completeAt = c.now + c.cfg.MulLat
	case isa.OpDiv, isa.OpRem:
		completeAt = c.now + c.cfg.DivLat
	default:
		completeAt = c.now + c.cfg.IntLat
	}
	e.state = stIssued
	e.completeAt = completeAt
	c.events.push(event{at: completeAt, thread: int8(t.id), kind: evComplete, gen: t.gen, idx: idx})
	return true
}

// observeFill records a newly allocated L1 fill: an MSHR-occupancy
// observation and, when tracing, a fill span on the mem track covering
// the in-flight window.
func (c *Core) observeFill(t *thread, addr int64, res cache.AccessResult) {
	if c.met != nil && c.met.MSHROccupancy != nil {
		c.met.MSHROccupancy.Observe(int64(c.mshrInUse))
	}
	if c.trace != nil {
		if dur := res.CompleteAt - c.now; dur > 0 {
			c.trace.Emit(obs.Event{Cycle: c.now, Dur: dur, Arg: addr, Kind: obs.KindFill,
				Core: c.id, Ctx: uint8(t.id), Level: uint8(res.Level)})
		}
	}
}

// dispatch fetches, functionally executes, and inserts instructions into
// the ROB, sharing FetchWidth between the threads.
func (c *Core) dispatch() {
	slots := c.cfg.FetchWidth
	c.dispatchedReady = false
	first := int(c.now & 1)
	for k := 0; k < 2 && slots > 0; k++ {
		t := &c.threads[(first+k)&1]
		for slots > 0 && c.dispatchOne(t) {
			slots--
		}
	}
}

func (c *Core) dispatchOne(t *thread) bool {
	if !t.active || t.halted || t.finished || c.err != nil {
		return false
	}
	if c.now < t.startAt || c.now < t.fetchBlockedUntil || t.serializeBlocked || t.waitBranch >= 0 {
		return false
	}
	if t.count >= c.robCap() {
		return false
	}
	if t.pc < 0 || t.pc >= len(t.prog.Code) {
		c.err = fmt.Errorf("cpu: %q thread %d pc %d out of range", t.prog.Name, t.id, t.pc)
		return false
	}
	in := &t.prog.Code[t.pc]

	// Structural pre-checks that must hold before consuming the instruction.
	switch in.Op {
	case isa.OpLoad, isa.OpAtomicAdd, isa.OpPrefetch:
		if t.lq >= c.lqCap() {
			return false
		}
	case isa.OpStore:
		if t.sq >= c.sqCap() {
			return false
		}
	case isa.OpJoin:
		if in.Imm == JoinWaitImm && c.smtActive() {
			return false // wait for the worker to finish
		}
	case isa.OpSpawn:
		if c.smtActive() {
			c.err = fmt.Errorf("cpu: %q spawns helper while sibling context busy", t.prog.Name)
			return false
		}
	}

	idx := int32(t.tail)
	e := &t.rob[idx]
	*e = robEntry{pc: int32(t.pc), op: in.Op, flags: in.Flags}
	t.deps[idx] = t.deps[idx][:0]

	// Timing dependencies on source registers.
	nsrc := in.Op.NumSrcs()
	if nsrc >= 1 {
		c.addDep(t, idx, e, in.Src1)
	}
	if nsrc >= 2 {
		c.addDep(t, idx, e, in.Src2)
	}

	// Functional execution (execute-at-dispatch).
	nextPC := t.pc + 1
	switch in.Op {
	case isa.OpNop:
	case isa.OpConst:
		t.regs[in.Dst] = in.Imm
	case isa.OpMov:
		t.regs[in.Dst] = t.regs[in.Src1]
	case isa.OpAdd:
		t.regs[in.Dst] = t.regs[in.Src1] + t.regs[in.Src2]
	case isa.OpSub:
		t.regs[in.Dst] = t.regs[in.Src1] - t.regs[in.Src2]
	case isa.OpMul:
		t.regs[in.Dst] = t.regs[in.Src1] * t.regs[in.Src2]
	case isa.OpDiv:
		if t.regs[in.Src2] == 0 {
			t.regs[in.Dst] = 0
		} else {
			t.regs[in.Dst] = t.regs[in.Src1] / t.regs[in.Src2]
		}
	case isa.OpRem:
		if t.regs[in.Src2] == 0 {
			t.regs[in.Dst] = 0
		} else {
			t.regs[in.Dst] = t.regs[in.Src1] % t.regs[in.Src2]
		}
	case isa.OpAnd:
		t.regs[in.Dst] = t.regs[in.Src1] & t.regs[in.Src2]
	case isa.OpOr:
		t.regs[in.Dst] = t.regs[in.Src1] | t.regs[in.Src2]
	case isa.OpXor:
		t.regs[in.Dst] = t.regs[in.Src1] ^ t.regs[in.Src2]
	case isa.OpShl:
		t.regs[in.Dst] = t.regs[in.Src1] << (uint64(t.regs[in.Src2]) & 63)
	case isa.OpShr:
		t.regs[in.Dst] = int64(uint64(t.regs[in.Src1]) >> (uint64(t.regs[in.Src2]) & 63))
	case isa.OpMin:
		t.regs[in.Dst] = min(t.regs[in.Src1], t.regs[in.Src2])
	case isa.OpMax:
		t.regs[in.Dst] = max(t.regs[in.Src1], t.regs[in.Src2])
	case isa.OpAddI:
		t.regs[in.Dst] = t.regs[in.Src1] + in.Imm
	case isa.OpMulI:
		t.regs[in.Dst] = t.regs[in.Src1] * in.Imm
	case isa.OpAndI:
		t.regs[in.Dst] = t.regs[in.Src1] & in.Imm
	case isa.OpXorI:
		t.regs[in.Dst] = t.regs[in.Src1] ^ in.Imm
	case isa.OpShlI:
		t.regs[in.Dst] = t.regs[in.Src1] << (uint64(in.Imm) & 63)
	case isa.OpShrI:
		t.regs[in.Dst] = int64(uint64(t.regs[in.Src1]) >> (uint64(in.Imm) & 63))
	case isa.OpLoad:
		e.addr = t.regs[in.Src1] + in.Imm
		if e.addr < 0 || e.addr >= c.mem.Size() {
			c.err = fmt.Errorf("cpu: %q thread %d pc %d: segfault: load at %d", t.prog.Name, t.id, t.pc, e.addr)
			return false
		}
		if c.shadow != nil && t.id == 0 {
			c.shadow.demand(e.addr)
		}
		v := c.mem.LoadWord(e.addr)
		if c.fault != nil && t.id == 1 &&
			in.Flags&(isa.FlagSync|isa.FlagSyncSkip) == isa.FlagSync {
			// The ghost's sync-counter read may observe the main thread's
			// published counter with a lag (store visibility delay). The
			// value only steers the ghost's throttle state machine — ghosts
			// never store — so this is timing-only.
			v = c.fault.StaleValue(v)
		}
		t.regs[in.Dst] = v
		t.lq++
	case isa.OpStore:
		e.addr = t.regs[in.Src1] + in.Imm
		if e.addr < 0 || e.addr >= c.mem.Size() {
			c.err = fmt.Errorf("cpu: %q thread %d pc %d: segfault: store at %d", t.prog.Name, t.id, t.pc, e.addr)
			return false
		}
		c.mem.StoreWord(e.addr, t.regs[in.Src2])
		t.sq++
	case isa.OpPrefetch:
		// Prefetches to unmapped addresses are dropped, as on real
		// hardware; clamp so the cache model sees a harmless line. The
		// shadow oracle sees the raw address — an unmapped prefetch is
		// precisely the divergence it exists to catch.
		e.addr = t.regs[in.Src1] + in.Imm
		if c.shadow != nil && t.id == 1 {
			c.shadow.prefetch(e.addr)
		}
		if e.addr < 0 || e.addr >= c.mem.Size() {
			e.addr = 0
		}
		t.lq++
	case isa.OpAtomicAdd:
		e.addr = t.regs[in.Src1] + in.Imm
		if e.addr < 0 || e.addr >= c.mem.Size() {
			c.err = fmt.Errorf("cpu: %q thread %d pc %d: segfault: atomic at %d", t.prog.Name, t.id, t.pc, e.addr)
			return false
		}
		if c.shadow != nil && t.id == 0 {
			c.shadow.demand(e.addr)
		}
		v := c.mem.LoadWord(e.addr) + t.regs[in.Src2]
		c.mem.StoreWord(e.addr, v)
		t.regs[in.Dst] = v
		t.lq++
	case isa.OpSerialize:
		t.serializeBlocked = true
		e.state = stSerialize
		t.serStart = c.now
		t.serPC = int32(t.pc)
	case isa.OpJmp:
		nextPC = int(in.Target)
	case isa.OpBEQ:
		if t.regs[in.Src1] == t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBNE:
		if t.regs[in.Src1] != t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBLT:
		if t.regs[in.Src1] < t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBGE:
		if t.regs[in.Src1] >= t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBLE:
		if t.regs[in.Src1] <= t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBGT:
		if t.regs[in.Src1] > t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpSpawn:
		hid := int(in.Imm)
		if hid < 0 || hid >= len(c.helpers) || c.helpers[hid] == nil {
			c.err = fmt.Errorf("cpu: %q spawns unknown helper %d", t.prog.Name, hid)
			return false
		}
		c.accumulate(1)
		spawnDelay := int64(0)
		if c.fault != nil {
			spawnDelay = c.fault.SpawnDelay()
		}
		c.threads[1].reset(c.helpers[hid], c.cfg.ROBSize, c.now+c.cfg.SpawnCostHelper+spawnDelay)
		// The helper inherits the spawning thread's register values (the
		// closure the thread-start call captures); extracted ghost
		// threads rely on this for their live-ins.
		c.threads[1].regs = t.regs
		c.Spawns++
		c.ghostStart = c.now
		if c.trace != nil {
			c.trace.Emit(obs.Event{Cycle: c.now, Arg: int64(hid),
				Kind: obs.KindGhostSpawn, Core: c.id, Ctx: uint8(t.id)})
		}
		bl := c.now + c.cfg.SpawnCostMain
		if bl > t.fetchBlockedUntil {
			t.fetchBlockedUntil = bl
		}
	case isa.OpJoin:
		c.deactivateHelper()
		if c.trace != nil {
			c.trace.Emit(obs.Event{Cycle: c.now, Kind: obs.KindGhostJoin,
				Core: c.id, Ctx: uint8(t.id)})
		}
		bl := c.now + c.cfg.JoinCost
		if bl > t.fetchBlockedUntil {
			t.fetchBlockedUntil = bl
		}
	case isa.OpHalt:
		t.halted = true
	default:
		c.err = fmt.Errorf("cpu: %q pc %d: unimplemented op %s", t.prog.Name, t.pc, in.Op)
		return false
	}

	// Observability taps (no effect on timing or statistics).
	if c.trace != nil {
		if in.Flags&isa.FlagSyncSkip != 0 {
			if !t.inSkip {
				t.inSkip = true
				c.trace.Emit(obs.Event{Cycle: c.now, Arg: int64(t.pc),
					Kind: obs.KindSyncSkip, Core: c.id, Ctx: uint8(t.id)})
			}
		} else {
			t.inSkip = false
		}
	}
	if c.met != nil && c.met.GhostLead != nil && t.id == 1 && in.Op == isa.OpLoad &&
		in.Flags&(isa.FlagSync|isa.FlagSyncSkip) == isa.FlagSync {
		// A sync check: the ghost just read the main thread's published
		// counter. Its own count is the published ghost counter word
		// (requires core.SyncParams.Trace).
		lead := c.mem.LoadWord(c.met.GhostCounterAddr) - t.regs[in.Dst]
		c.met.GhostLead.Observe(lead)
	}

	// Hard branches stall dispatch until resolution.
	if in.Op.IsCondBranch() && in.HasFlag(isa.FlagHardBranch) && e.notReady > 0 {
		t.waitBranch = idx
	}

	// Claim the destination register for timing purposes.
	if in.Op.HasDst() {
		t.producer[in.Dst] = idx
	}

	// Entry scheduling.
	switch in.Op {
	case isa.OpSerialize:
		// handled at the ROB head in commit.
	case isa.OpSpawn, isa.OpJoin, isa.OpHalt:
		e.state = stDirect
		e.completeAt = c.now + 1
		c.events.push(event{at: e.completeAt, thread: int8(t.id), kind: evComplete, gen: t.gen, idx: idx})
	default:
		if e.notReady == 0 {
			e.state = stReady
			t.readyQ = append(t.readyQ, idx)
			c.dispatchedReady = true // issue already ran this cycle
		} else {
			e.state = stWaiting
		}
	}

	t.tail = (t.tail + 1) % len(t.rob)
	t.count++
	t.pc = nextPC
	return true
}

// addDep registers a timing dependency of entry idx on register r.
func (c *Core) addDep(t *thread, idx int32, e *robEntry, r isa.Reg) {
	p := t.producer[r]
	if p < 0 {
		return
	}
	pe := &t.rob[p]
	if pe.state == stDone {
		return
	}
	t.deps[p] = append(t.deps[p], idx)
	e.notReady++
}

// JoinWaitImm distinguishes a "wait for the helper to finish" join (used
// by the SMT-parallelization transform) from the default "kill the
// helper" join Ghost Threading uses.
const JoinWaitImm = 1

// Thread statistics accessors.

// accumulate folds context id's current counters into the spawn-surviving
// aggregates (called before the context is reset for a new helper).
func (c *Core) accumulate(id int) {
	t := &c.threads[id]
	c.accCommitted[id] += t.committed
	c.accSerializes[id] += t.serializes
	c.accSerStall[id] += t.serializeStall
	c.accFrontend[id] += t.frontendStall
	t.committed, t.serializes, t.serializeStall, t.frontendStall = 0, 0, 0, 0
}

// Committed returns the number of instructions committed by context id,
// across helper re-spawns.
func (c *Core) Committed(id int) int64 { return c.accCommitted[id] + c.threads[id].committed }

// Serializes returns how many serialize instructions context id retired,
// across helper re-spawns.
func (c *Core) Serializes(id int) int64 { return c.accSerializes[id] + c.threads[id].serializes }

// SerializeStall returns the total cycles context id spent with fetch
// stopped behind serialize instructions (dispatch to commit per
// serialize, including the partial window of a serialize killed by a
// join), across helper re-spawns. It equals the sum of the
// serialize-throttle span durations in a trace of the same run.
func (c *Core) SerializeStall(id int) int64 {
	return c.accSerStall[id] + c.threads[id].serializeStall
}

// FrontendStalls returns cycles context id spent active with an empty ROB.
func (c *Core) FrontendStalls(id int) int64 {
	return c.accFrontend[id] + c.threads[id].frontendStall
}

// SetTrace attaches (or with nil detaches) an event recorder; coreID is
// stamped into emitted events as the Perfetto process id. Attach before
// running — events are emitted from the attach point on.
func (c *Core) SetTrace(r *obs.Recorder, coreID int) {
	c.trace = r
	c.id = uint8(coreID)
}

// Trace returns the attached recorder, or nil.
func (c *Core) Trace() *obs.Recorder { return c.trace }

// SetMetrics attaches (or with nil detaches) histogram hooks.
func (c *Core) SetMetrics(m *obs.CoreMetrics) { c.met = m }

// SetFault attaches (or with nil detaches) a fault injector. Attach
// before Load: Load schedules the injector's timing-wheel triggers.
func (c *Core) SetFault(inj *fault.Injector) { c.fault = inj }

// FaultStats returns the counters of faults actually injected so far
// (zero when no injector is attached).
func (c *Core) FaultStats() fault.Stats {
	if c.fault == nil {
		return fault.Stats{}
	}
	return c.fault.Stats
}

// PCProfile returns per-static-instruction (stall cycles, executions) for
// context id's current program. The slices alias internal state; callers
// must copy if they outlive the run.
func (c *Core) PCProfile(id int) (stall, exec []int64) {
	return c.threads[id].stallPC, c.threads[id].execPC
}

// HelperActive reports whether context 1 is running.
func (c *Core) HelperActive() bool { return c.smtActive() }

// Hier returns the core's cache hierarchy (for system-level statistics).
func (c *Core) Hier() *cache.Hierarchy { return c.hier }

// PipelineSample is a point-in-time snapshot of the core's occupancy,
// used by the gttrace tool to visualise full-window stalls (figure 2)
// and serialize throttling.
type PipelineSample struct {
	Cycle            int64
	ROB              [2]int  // entries occupied per context
	LQ               [2]int  // load-queue entries per context
	SQ               [2]int  // store-queue entries per context
	MSHRs            int     // outstanding L1 misses (shared)
	SerializeBlocked [2]bool // context blocked behind a serialize
	Active           [2]bool
}

// Sample snapshots the pipeline occupancy at the current cycle.
func (c *Core) Sample() PipelineSample {
	var s PipelineSample
	s.Cycle = c.now
	s.MSHRs = c.mshrInUse
	for i := range c.threads {
		t := &c.threads[i]
		s.ROB[i] = t.count
		s.LQ[i] = t.lq
		s.SQ[i] = t.sq
		s.SerializeBlocked[i] = t.serializeBlocked
		s.Active[i] = t.active && !t.finished
	}
	return s
}
