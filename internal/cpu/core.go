package cpu

import (
	"fmt"
	"math"

	"ghostthread/internal/cache"
	"ghostthread/internal/fault"
	"ghostthread/internal/isa"
	"ghostthread/internal/mem"
	"ghostthread/internal/obs"
)

// entry states. The engine is fully analytic: every instruction's issue
// and completion cycles are fixed the moment it dispatches (its producers,
// dispatched earlier, already have fixed completion cycles — induction
// from program order), so the reorder buffer never holds an entry whose
// timing is unknown. Only the serialize instruction defers: its cost
// starts when it reaches the ROB head.
const (
	stIssued    = iota // scheduled: completes at completeAt
	stSerialize        // serialize: completes at the ROB head (drain + restart cost)
)

// thread is one SMT hardware context. The reorder buffer is kept in
// structure-of-arrays form: the per-slot fields the hot loops touch
// (state bytes, static pcs, completion cycles) live in parallel slices
// sized once per reset and reused across helper re-spawns, so commit
// walks densely packed state and the steady-state step path allocates
// nothing.
type thread struct {
	id   int
	gen  uint32
	prog *isa.Program
	code []dInstr // decoded image of prog (see decoded.go)

	active   bool
	startAt  int64
	halted   bool // halt dispatched
	finished bool // halted and ROB drained

	pc       int
	regs     [isa.NumRegs]int64
	producer [isa.NumRegs]int32 // ROB slot producing the register, -1 if value final

	// Reorder buffer, SoA. Slot i is described by state[i], rpc[i] (the
	// static pc, indexing code), cmeta[i] (the packed commit metadata,
	// see decoded.go), and completeAt[i] — the completion cycle in
	// stIssued, or the drain deadline in stSerialize (0 = not yet at the
	// head).
	state      []uint8
	rpc        []int32
	cmeta      []uint16
	completeAt []int64
	head, tail int
	count      int

	lq, sq            int
	fetchBlockedUntil int64
	serializeBlocked  bool

	// Per-run statistics.
	committed      int64
	serializes     int64
	serializeStall int64 // Σ (commit − dispatch) cycles over retired serializes
	frontendStall  int64 // cycles active with an empty ROB (fetch-blocked)
	stallPC        []int64
	execPC         []int64

	// Serialize bookkeeping: dispatch cycle and pc of the serialize
	// currently blocking fetch (meaningful while serializeBlocked).
	serStart int64
	serPC    int32

	// Tracing-only state (mutated only when a recorder is attached, and
	// never read by the timing model or statistics).
	robStallStart int64 // open full-window stall span start, -1 when none
	robStallPC    int32
	inSkip        bool // inside a FlagSyncSkip run (dedups skip instants)
}

func (t *thread) reset(prog *isa.Program, dp *decodedProgram, robSize int, startAt int64) {
	t.gen++
	t.prog = prog
	if dp != nil {
		t.code = dp.code
	} else {
		t.code = nil
	}
	t.active = prog != nil
	t.startAt = startAt
	t.halted = false
	t.finished = false
	t.pc = 0
	for i := range t.producer {
		t.producer[i] = -1
	}
	if cap(t.state) < robSize {
		t.state = make([]uint8, robSize)
		t.rpc = make([]int32, robSize)
		t.cmeta = make([]uint16, robSize)
		t.completeAt = make([]int64, robSize)
	}
	t.state = t.state[:robSize]
	t.rpc = t.rpc[:robSize]
	t.cmeta = t.cmeta[:robSize]
	t.completeAt = t.completeAt[:robSize]
	t.head, t.tail, t.count = 0, 0, 0
	t.lq, t.sq = 0, 0
	t.fetchBlockedUntil = 0
	t.serializeBlocked = false
	t.committed = 0
	t.serializes = 0
	t.serializeStall = 0
	t.frontendStall = 0
	t.serStart, t.serPC = 0, 0
	t.robStallStart, t.robStallPC = -1, 0
	t.inSkip = false
	if prog != nil {
		// Reuse the profile counters across re-spawns of same-sized
		// programs (the common helper case) so spawning never allocates on
		// the steady-state path.
		n := len(prog.Code)
		if cap(t.stallPC) < n {
			t.stallPC = make([]int64, n)
			t.execPC = make([]int64, n)
		} else {
			t.stallPC = t.stallPC[:n]
			t.execPC = t.execPC[:n]
			clear(t.stallPC)
			clear(t.execPC)
		}
	}
}

// Core is one physical core with two SMT contexts sharing a cache
// hierarchy, issue bandwidth, and MSHRs.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	mem  *mem.Memory

	helpers  []*isa.Program
	dmain    *decodedProgram
	dhelpers []*decodedProgram
	threads  [2]thread
	now      int64
	events   eventWheel
	due      []event  // scratch for the cycle's due events (reused)
	lat      [3]int64 // issue latency per latClass (Int, Mul, Div)

	// Analytic MSHR file: mshrFreeAt holds, per slot, the cycle at which
	// its outstanding fill lands (free when ≤ the access time), arranged
	// as a binary min-heap so the earliest release is the root. A miss
	// that finds every slot busy at its ready cycle is delayed to the
	// earliest release — the queueing discipline the event-driven model
	// expressed as per-cycle retries.
	mshrFreeAt []int64

	// Issue-port claim ring: issueCnt[c&wheelMask] is the number of the
	// cycle's IssueWidth ports already claimed, valid when
	// issueStamp[c&wheelMask] == c (stale slots read as zero, so the ring
	// never needs bulk clearing as the clock advances). Every instruction
	// claims the earliest free cycle at dispatch, in dispatch order.
	// Claims beyond the ring horizon are not tracked — a dependence chain
	// stretching a wheel-length into the future is latency-bound, not
	// port-bound.
	issueCnt   [wheelSize]int16
	issueStamp [wheelSize]int64

	// Statistics.
	LoadLevel     [4]int64 // demand loads + atomics satisfied per level
	PrefetchLevel [4]int64 // prefetches satisfied per level
	Stores        int64
	Prefetches    int64
	Spawns        int64
	GovKills      int64 // governor kill decisions that retired a live ghost
	GovRespawns   int64 // governor re-spawns executed

	// Governor state: the last helper id the main program spawned (-1
	// before any spawn — the governor can only re-spawn what once ran),
	// whether re-spawning is permanently off (main joined, or a fault
	// kill revoked the ghost context), and the main-counter word the
	// respawn handler re-zeroes to re-align the sync distance (0 = none).
	lastHid    int
	noRespawn  bool
	govCtrAddr int64

	// PC-synchronized respawn (SetGovResync). A window boundary is an
	// arbitrary point in the main loop body, so the main context's
	// registers there are mid-iteration state — worthless as ghost entry
	// values. When govResyncPC is set, evGovRespawn only ARMS the
	// trigger; the actual re-seed fires when the main thread next
	// dispatches the region-loop header, where the loop-carried live-ins
	// are exactly what OpSpawn would have captured. govAtResync
	// edge-detects the arrival (a stalled header must not re-fire every
	// cycle); govRespawnCap bounds total governor respawns.
	govResyncPC   int64
	govRespawnCap int64
	govArmed      bool
	govAtResync   bool

	// Accumulated per-context counters surviving helper re-spawns.
	accCommitted  [2]int64
	accSerializes [2]int64
	accSerStall   [2]int64
	accFrontend   [2]int64

	// Observability (nil = off; see internal/obs). Emission sites guard
	// with a nil check so the disabled hot path costs one branch, and
	// neither tracing nor metrics ever feeds back into timing or
	// statistics — a traced run is bit-identical to an untraced one.
	trace      *obs.Recorder
	met        *obs.CoreMetrics
	wrec       *obs.WindowRecorder // windowed telemetry accumulator
	wrecAddr   int64               // ghost counter word for the lead tap
	id         uint8               // core id stamped into trace events
	ghostStart int64               // spawn-dispatch cycle of the live helper (tracing)

	// Shadow oracle (nil = off; see shadow.go). Taps sit in dispatch,
	// which only runs at stepped cycles, so the counters are identical
	// across stepping modes; the oracle never feeds back into timing.
	shadow *shadowOracle

	// Fault injection (nil = off; see internal/fault). Draw points are
	// event processing and dispatch — both of which run at the same
	// cycles under per-cycle stepping and event skipping, so a faulted run
	// is bit-identical across step modes.
	fault *fault.Injector

	// Turn gate for parallel multi-core stepping (nil = serial; see
	// gate.go and sim.System). haveTurn tracks whether this step already
	// acquired the cycle's turn.
	gate     *StepGate
	rank     int
	haveTurn bool

	err error
}

// New builds a core over the given hierarchy and memory.
func New(cfg Config, hier *cache.Hierarchy, m *mem.Memory) *Core {
	c := &Core{cfg: cfg, hier: hier, mem: m}
	c.threads[0].id = 0
	c.threads[1].id = 1
	c.lat = [3]int64{cfg.IntLat, cfg.MulLat, cfg.DivLat}
	return c
}

// Load installs the main program on context 0 and records the helper
// programs that OpSpawn can activate on context 1. Programs are decoded
// once here (see decoded.go); isa.Program is immutable after building,
// so the decoded image needs no invalidation.
func (c *Core) Load(main *isa.Program, helpers []*isa.Program) {
	c.helpers = helpers
	c.dmain = decodeProgram(main)
	c.dhelpers = c.dhelpers[:0]
	for _, h := range helpers {
		c.dhelpers = append(c.dhelpers, decodeProgram(h))
	}
	c.threads[0].reset(main, c.dmain, c.cfg.ROBSize, 0)
	c.threads[1].reset(nil, nil, c.cfg.ROBSize, 0)
	c.accCommitted = [2]int64{}
	c.accSerializes = [2]int64{}
	c.accSerStall = [2]int64{}
	c.accFrontend = [2]int64{}
	c.ghostStart = 0
	c.lastHid = -1
	c.noRespawn = false
	// PC-synced re-seeding is armed from the start: a per-phase ghost
	// needs fresh live-ins at EVERY region-header crossing, including the
	// first ones, or it misses whole phases waiting for a governor
	// decision. A governor kill disarms; a respawn decision re-arms.
	c.govArmed = c.govResyncPC > 0
	c.govAtResync = false
	c.now = 0
	c.events.reset()
	nmshr := c.cfg.MSHRs
	if nmshr < 1 {
		nmshr = 1 // the heap root is probed unconditionally
	}
	if cap(c.mshrFreeAt) < nmshr {
		c.mshrFreeAt = make([]int64, nmshr)
	}
	c.mshrFreeAt = c.mshrFreeAt[:nmshr]
	clear(c.mshrFreeAt)
	for i := range c.issueStamp {
		c.issueStamp[i] = -1
	}
	c.err = nil
	if c.fault != nil {
		// Seed the timing wheel with the fault triggers that need one: the
		// first preemption window and the one-shot ghost kill. Putting them
		// on the wheel (instead of polling) is what lets injection compose
		// with the event-skip fast path.
		if gap := c.fault.NextPreemptGap(); gap > 0 {
			c.events.push(c.now, event{at: gap, kind: evFaultPreempt})
		}
		if at := c.fault.Config().GhostKillAt; at > 0 {
			c.events.push(c.now, event{at: at, kind: evFaultKill})
		}
	}
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Err returns the first simulation error (bad program behaviour), if any.
func (c *Core) Err() error { return c.err }

// Done reports whether the main thread has finished (and any helper is
// inactive or finished).
func (c *Core) Done() bool {
	if c.err != nil {
		return true
	}
	t0, t1 := &c.threads[0], &c.threads[1]
	return t0.finished && (!t1.active || t1.finished)
}

// smtActive reports whether both contexts are competing for resources.
func (c *Core) smtActive() bool {
	t1 := &c.threads[1]
	return t1.active && !t1.finished
}

func (c *Core) robCap() int {
	if c.smtActive() {
		return c.cfg.ROBSize / 2
	}
	return c.cfg.ROBSize
}

func (c *Core) lqCap() int {
	if c.smtActive() {
		return c.cfg.LoadQ / 2
	}
	return c.cfg.LoadQ
}

func (c *Core) sqCap() int {
	if c.smtActive() {
		return c.cfg.StoreQ / 2
	}
	return c.cfg.StoreQ
}

// SetGate attaches (or with nil detaches) the turn gate for parallel
// multi-core stepping, with this core's rank in the current cycle's
// serial order. Attached by sim.System's parallel loop only.
func (c *Core) SetGate(g *StepGate, rank int) {
	c.gate = g
	c.rank = rank
}

// turn acquires this cycle's shared-access turn once per step: the first
// shared-resource touch (cache hierarchy, memory image) waits until every
// lower-ranked core has finished its step, reproducing the serial order.
func (c *Core) turn() {
	if c.gate != nil && !c.haveTurn {
		c.gate.acquire(c.rank)
		c.haveTurn = true
	}
}

// claimIssue claims an issue port at the earliest cycle at or after
// ready with a free slot and returns that cycle. Ports beyond the ring
// horizon are untracked (see the issueCnt field comment).
func (c *Core) claimIssue(ready int64) int64 {
	cyc := ready
	for cyc-c.now <= wheelSize {
		b := int(uint64(cyc) & wheelMask)
		if c.issueStamp[b] != cyc {
			c.issueStamp[b] = cyc
			c.issueCnt[b] = 1
			return cyc
		}
		if int(c.issueCnt[b]) < c.cfg.IssueWidth {
			c.issueCnt[b]++
			return cyc
		}
		cyc++
	}
	return cyc
}

// mshrWait returns the earliest cycle at or after `at` with a free MSHR.
// mshrFreeAt is a binary min-heap, so the earliest-freeing slot is the
// root; only the multiset of free times is observable (wait, busy), so
// the heap is behaviourally identical to a flat scan at O(1) per probe.
func (c *Core) mshrWait(at int64) int64 {
	if f := c.mshrFreeAt[0]; f > at {
		return f
	}
	return at
}

// mshrClaim occupies the earliest-freeing MSHR slot until the fill
// lands: a replace-root sift-down on the free-time heap.
func (c *Core) mshrClaim(until int64) {
	h := c.mshrFreeAt
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		if r := l + 1; r < len(h) && h[r] < h[l] {
			l = r
		}
		if h[l] >= until {
			break
		}
		h[i] = h[l]
		i = l
	}
	h[i] = until
}

// mshrBusy counts MSHR slots occupied at cycle `at`.
func (c *Core) mshrBusy(at int64) int {
	n := 0
	for _, f := range c.mshrFreeAt {
		if f > at {
			n++
		}
	}
	return n
}

// Step advances the core by one cycle: process due fault triggers,
// commit, then dispatch (reverse pipeline order). It returns false once
// the core is done.
func (c *Core) Step() bool {
	if c.Done() {
		if c.gate != nil {
			c.gate.finish(c.rank)
		}
		return false
	}
	c.haveTurn = false
	c.now++
	if c.events.len() > 0 {
		c.processEvents()
	}
	for i := range c.threads {
		c.commit(&c.threads[i])
	}
	c.dispatch()
	if c.trace != nil {
		c.traceStalls()
	}
	if c.gate != nil {
		c.gate.finish(c.rank)
	}
	return !c.Done()
}

// traceStalls runs at the end of every stepped cycle when tracing is on:
// it opens a full-window stall span when a context's reorder window is
// full behind an uncommittable head and closes it when the condition
// clears. The predicate is a pure function of pipeline state, and state
// only changes at stepped cycles, so the spans come out identical under
// per-cycle stepping and the event-skip fast path — a SkipTo jump cannot
// land inside a state transition (see NextEvent's contract).
func (c *Core) traceStalls() {
	for i := range c.threads {
		t := &c.threads[i]
		blocked := false
		var pc int32
		if t.active && !t.finished && t.count >= c.robCap() &&
			t.state[t.head] == stIssued && t.completeAt[t.head] > c.now {
			blocked = true
			pc = t.rpc[t.head]
		}
		switch {
		case blocked && t.robStallStart < 0:
			t.robStallStart = c.now
			t.robStallPC = pc
		case !blocked && t.robStallStart >= 0:
			c.closeROBStall(t)
		}
	}
}

// closeROBStall emits the open full-window stall span of t, ending now.
func (c *Core) closeROBStall(t *thread) {
	if dur := c.now - t.robStallStart; dur > 0 {
		c.trace.Emit(obs.Event{Cycle: t.robStallStart, Dur: dur, Arg: int64(t.robStallPC),
			Kind: obs.KindROBStall, Core: c.id, Ctx: uint8(t.id)})
	}
	t.robStallStart = -1
}

// Run steps until completion or maxCycles, returning the cycle count.
// Between steps it fast-forwards over spans NextEvent proves inert, so a
// DRAM-bound run costs one step per event rather than one per cycle; the
// returned cycle count and every statistic are identical to stepping
// cycle by cycle (SkipTo accrues the skipped cycles' stall accounting).
func (c *Core) Run(maxCycles int64) (int64, error) {
	for c.Step() {
		if c.now >= maxCycles {
			return c.now, fmt.Errorf("cpu: %q exceeded %d cycles", c.threads[0].prog.Name, maxCycles)
		}
		if next := c.NextEvent(); next > c.now+1 {
			c.SkipTo(min(next-1, maxCycles-1))
		}
	}
	return c.now, c.err
}

// never is NextEvent's "no future event" sentinel.
const never = math.MaxInt64

// NextEvent returns the earliest cycle, strictly after Now(), at which
// any core state can change — or math.MaxInt64 when the core is done (or
// deadlocked). Calling Step for every cycle in (Now(), NextEvent()) would
// only accrue stall statistics; SkipTo accrues them in O(1), which is
// what lets the run loop jump straight to the next event.
//
// It must be called between Steps (after Step has returned), when these
// invariants hold and every possible state change is one of:
//
//   - a timing-wheel event firing (fault preemption or kill triggers —
//     the only events left in the analytic engine);
//   - the ROB head reaching its completion cycle (stIssued) or, for a
//     serialize, its drain deadline;
//   - a committable ROB head (commit-width limits can leave one);
//   - dispatch proceeding once its fetch barriers (thread start, branch
//     redirect, spawn/join costs) expire.
//
// Dispatch blocked on a full ROB or load/store queue only unblocks via
// commit, covered by the head clauses above.
func (c *Core) NextEvent() int64 {
	if c.Done() {
		return never
	}
	next := int64(never)
	if at, ok := c.events.peekAt(c.now); ok && at < next {
		next = at
	}
	for i := range c.threads {
		t := &c.threads[i]
		if !t.active || t.finished {
			continue
		}
		// Commit progress.
		if t.count > 0 {
			switch t.state[t.head] {
			case stIssued:
				next = min(next, max(t.completeAt[t.head], c.now+1))
			case stSerialize:
				if at := t.completeAt[t.head]; at == 0 {
					next = min(next, c.now+1) // drain deadline set at the head
				} else {
					next = min(next, at)
				}
			}
		}
		// Dispatch progress. Threads blocked mid-pipeline (serialize
		// drain, full ROB/LQ/SQ, join-wait) only unblock via commits
		// handled above; everything else can dispatch as soon as the
		// fetch barriers expire.
		if t.halted || t.serializeBlocked {
			continue
		}
		if t.count >= c.robCap() {
			continue
		}
		if t.pc >= 0 && t.pc < len(t.code) {
			d := &t.code[t.pc]
			switch d.class {
			case clLoad, clAtomic, clPrefetch:
				if t.lq >= c.lqCap() {
					continue
				}
			case clStore:
				if t.sq >= c.sqCap() {
					continue
				}
			case clJoin:
				if d.imm == JoinWaitImm && c.smtActive() {
					continue
				}
			}
		}
		next = min(next, max(c.now+1, max(t.startAt, t.fetchBlockedUntil)))
	}
	return next
}

// SkipTo advances the clock to target without stepping, accruing exactly
// the statistics the skipped cycles would have recorded: a thread with a
// blocked ROB head charges its stall-attribution counter every cycle, and
// a thread with an empty ROB charges frontend stalls from its start cycle
// on. The caller must ensure target < NextEvent() (no state other than
// these counters may change over the span); SkipTo(target <= Now()) is a
// no-op.
func (c *Core) SkipTo(target int64) {
	if target <= c.now {
		return
	}
	span := target - c.now
	for i := range c.threads {
		t := &c.threads[i]
		if !t.active || t.finished {
			continue
		}
		if t.count == 0 {
			// An empty ROB with halted set would already be finished, so
			// this thread is fetch-blocked or not yet started: it counts
			// frontend-stall cycles once its start cycle is reached.
			if from := max(c.now+1, t.startAt); from <= target {
				t.frontendStall += target - from + 1
			}
			continue
		}
		// The head cannot commit anywhere in the span (otherwise
		// NextEvent would have stopped the skip sooner), so every skipped
		// cycle charges the instruction blocking it.
		t.stallPC[t.rpc[t.head]] += span
	}
	c.now = target
}

func (c *Core) processEvents() {
	c.due = c.events.takeDue(c.now, c.due)
	for _, e := range c.due {
		switch e.kind {
		case evFaultPreempt:
			c.applyPreempt()
		case evFaultKill:
			if c.deactivateHelper() {
				c.fault.Stats.Kills++
			}
			// The OS revoked the ghost's context: the governor must not
			// resurrect what the fault schedule killed.
			c.noRespawn = true
		case evGovKill:
			// Disarm PC-synced re-seeding too: a kill that left the header
			// trigger armed would be undone at the next crossing.
			c.govArmed = false
			if c.deactivateHelper() {
				c.GovKills++
				if c.trace != nil {
					c.trace.Emit(obs.Event{Cycle: c.now, Kind: obs.KindGovKill,
						Core: c.id, Ctx: 1})
				}
			}
		case evGovRespawn:
			if c.govResyncPC > 0 {
				// Defer the re-seed to the main thread's next region-loop
				// header crossing (see dispatchRun) — and keep it armed, so
				// every later crossing refreshes the ghost for its phase.
				c.govArmed = true
			} else {
				c.govRespawn()
			}
		}
	}
}

// govRespawn handles one evGovRespawn trigger: re-spawn the last helper
// the main program launched, seeding it with the main context's CURRENT
// register values — the same closure capture OpSpawn performs, but taken
// now, so loop-carried live-ins that went stale since the original spawn
// (per-level bounds, frontier pointers) are re-synchronized. A live ghost
// is replaced (the manual per-level bfs ghost re-spawns over a live
// sibling the same way); main pays no spawn cost — the governor, not the
// main program, initiates this. The main sync counter word is re-zeroed
// so the fresh ghost's local count and the published count restart
// aligned, exactly like the counter reset rewriteMain emits before
// OpSpawn. No-op once main has halted or joined, after a fault kill, or
// before any first spawn.
func (c *Core) govRespawn() {
	t0 := &c.threads[0]
	if c.lastHid < 0 || c.noRespawn || t0.halted || t0.finished {
		return
	}
	if c.govRespawnCap > 0 && c.GovRespawns >= c.govRespawnCap {
		return
	}
	c.deactivateHelper() // settle accounting of a live-but-stale ghost
	c.accumulate(1)
	c.threads[1].reset(c.helpers[c.lastHid], c.dhelpers[c.lastHid], c.cfg.ROBSize, c.now+c.cfg.SpawnCostHelper)
	c.threads[1].regs = t0.regs
	c.Spawns++
	c.GovRespawns++
	c.ghostStart = c.now
	if c.govCtrAddr > 0 {
		c.turn()
		c.mem.StoreWord(c.govCtrAddr, 0)
	}
	if c.trace != nil {
		c.trace.Emit(obs.Event{Cycle: c.now, Arg: int64(c.lastHid),
			Kind: obs.KindGovRespawn, Core: c.id, Ctx: 1})
	}
}

// applyPreempt handles one evFaultPreempt trigger: the OS context-switches
// the sibling SMT context away for a drawn window, so the helper fetches
// nothing while its in-flight instructions drain. The window length and
// the gap to the next trigger are always drawn — whether or not a helper
// is live — so the schedule is a function of the seed alone and never
// shifts with workload behaviour.
func (c *Core) applyPreempt() {
	win := c.fault.PreemptWindow()
	gap := c.fault.NextPreemptGap()
	h := &c.threads[1]
	if h.active && !h.finished {
		c.fault.Stats.Preemptions++
		c.fault.Stats.PreemptedCycles += win
		if bl := c.now + win; bl > h.fetchBlockedUntil {
			h.fetchBlockedUntil = bl
		}
	}
	c.events.push(c.now, event{at: c.now + win + gap, kind: evFaultPreempt})
}

// deactivateHelper kills the live helper context mid-flight — the shared
// path of the default join and the ghost-kill fault (ghost threads modify
// no application state, so an asynchronous kill is architecturally safe).
// It settles the partial serialize-stall window and closes open trace
// spans. Reports whether a helper was actually live.
func (c *Core) deactivateHelper() bool {
	h := &c.threads[1]
	if !h.active || h.finished {
		return false
	}
	if h.serializeBlocked {
		// The kill interrupts a serialize throttle mid-flight: account the
		// partial stall so the counter (and the span sum) covers every
		// throttled cycle.
		dur := c.now - h.serStart
		h.serializeStall += dur
		if c.met != nil && c.met.SerializeStall != nil {
			c.met.SerializeStall.Observe(dur)
		}
		if c.trace != nil && dur > 0 {
			c.trace.Emit(obs.Event{Cycle: h.serStart, Dur: dur, Arg: int64(h.serPC),
				Kind: obs.KindSerialize, Core: c.id, Ctx: 1})
		}
	}
	if c.trace != nil {
		if h.robStallStart >= 0 {
			c.closeROBStall(h)
		}
		if dur := c.now - c.ghostStart; dur > 0 {
			c.trace.Emit(obs.Event{Cycle: c.ghostStart, Dur: dur,
				Kind: obs.KindGhostLife, Core: c.id, Ctx: 1})
		}
	}
	h.active = false
	h.finished = true
	h.gen++
	return true
}

func (c *Core) commit(t *thread) {
	if !t.active || t.finished {
		return
	}
	if t.count == 0 {
		if t.halted {
			t.finished = true
			c.traceGhostDrain(t)
		} else if c.now >= t.startAt {
			t.frontendStall++
		}
		return
	}
	for w := 0; w < c.cfg.CommitWidth && t.count > 0; w++ {
		h := t.head
		pc := t.rpc[h]
		if t.state[h] == stSerialize {
			if t.completeAt[h] == 0 {
				// The serialize has drained: all older instructions have
				// committed. It now pays its microcode/restart cost.
				t.completeAt[h] = c.now + c.cfg.SerializeLat
			}
			if c.now < t.completeAt[h] {
				t.stallPC[pc]++
				return
			}
			t.serializeBlocked = false
			t.serializes++
			dur := c.now - t.serStart
			t.serializeStall += dur
			if c.met != nil && c.met.SerializeStall != nil {
				c.met.SerializeStall.Observe(dur)
			}
			if c.trace != nil && dur > 0 {
				c.trace.Emit(obs.Event{Cycle: t.serStart, Dur: dur, Arg: int64(pc),
					Kind: obs.KindSerialize, Core: c.id, Ctx: uint8(t.id)})
			}
		} else if t.completeAt[h] > c.now {
			if w == 0 {
				t.stallPC[pc]++
			}
			return
		}
		m := t.cmeta[h]
		switch m >> cmetaQShift {
		case cmetaQStore:
			t.sq--
		case cmetaQLoad:
			t.lq--
		}
		// Entries complete silently (no wake event), so the register
		// claim is released here: a recycled ROB slot can then never be
		// mistaken for a live producer.
		if m&cmetaHasDst != 0 && t.producer[m&cmetaDstMask] == int32(h) {
			t.producer[m&cmetaDstMask] = -1
		}
		t.execPC[pc]++
		t.committed++
		t.head++
		if t.head == len(t.state) {
			t.head = 0
		}
		t.count--
	}
	if t.count == 0 && t.halted {
		t.finished = true
		c.traceGhostDrain(t)
	}
}

// traceGhostDrain closes the ghost-life span when the helper context
// finishes by draining naturally.
func (c *Core) traceGhostDrain(t *thread) {
	if c.trace == nil || t.id != 1 {
		return
	}
	if dur := c.now - c.ghostStart; dur > 0 {
		c.trace.Emit(obs.Event{Cycle: c.ghostStart, Dur: dur,
			Kind: obs.KindGhostLife, Core: c.id, Ctx: 1})
	}
}

// readyFloor returns the earliest cycle the instruction's operands allow
// it to begin execution: the latest completion cycle among its
// producers. Every producer, being older, already has a fixed completion
// cycle — the induction the analytic engine rests on.
func (t *thread) readyFloor(d *dInstr) int64 {
	floor := int64(0)
	if d.nsrc >= 1 {
		if p := t.producer[d.src1]; p >= 0 {
			floor = t.completeAt[p]
		}
		if d.nsrc == 2 {
			if p := t.producer[d.src2]; p >= 0 && t.completeAt[p] > floor {
				floor = t.completeAt[p]
			}
		}
	}
	return floor
}

// observeFill records a newly allocated L1 fill issued at cycle `at`: an
// MSHR-occupancy observation and, when tracing, a fill span on the mem
// track covering the in-flight window.
func (c *Core) observeFill(t *thread, addr, at int64, res cache.AccessResult) {
	if c.met != nil || c.wrec != nil {
		busy := c.mshrBusy(at)
		if c.met != nil && c.met.MSHROccupancy != nil {
			c.met.MSHROccupancy.Observe(int64(busy))
		}
		if c.wrec != nil {
			c.wrec.ObserveMSHR(busy)
		}
	}
	if c.trace != nil {
		if dur := res.CompleteAt - at; dur > 0 {
			c.trace.Emit(obs.Event{Cycle: at, Dur: dur, Arg: addr, Kind: obs.KindFill,
				Core: c.id, Ctx: uint8(t.id), Level: uint8(res.Level)})
		}
	}
}

// issueMem fixes the issue cycle of a memory operation dispatched this
// cycle and performs its cache access there-and-then: the access is
// stamped with the claimed future issue cycle, so hit/miss classification,
// fill timing, MSHR occupancy, and bandwidth consumption all see the
// cycle the event-driven engine would have issued at. A miss finding all
// MSHRs busy is delayed to the earliest release (analytic queueing in
// place of per-cycle retries). Returns the entry's completion cycle.
func (c *Core) issueMem(t *thread, d *dInstr, addr, floor int64) int64 {
	ready := c.now + 1
	if floor > ready {
		ready = floor
	}
	switch d.class {
	case clLoad, clAtomic:
		if c.hier.WouldMissL1(addr, ready) {
			if w := c.mshrWait(ready); w > ready {
				ready = w
			}
		}
		issueAt := c.claimIssue(ready)
		res := c.hier.DemandAccess(addr, issueAt)
		c.LoadLevel[res.Level]++
		if res.NewMiss {
			c.mshrClaim(res.CompleteAt)
			c.observeFill(t, addr, issueAt, res)
		}
		return res.CompleteAt
	case clPrefetch:
		if c.hier.WouldMissL1(addr, ready) {
			if w := c.mshrWait(ready); w > ready {
				ready = w
			}
		}
		issueAt := c.claimIssue(ready)
		var pfDrop bool
		var pfDelay int64
		if c.fault != nil {
			pfDrop, pfDelay = c.fault.PrefetchFate()
		}
		if pfDrop {
			// Dropped in the memory system: the instruction still retires
			// (software prefetches are hints), but no fill starts.
			c.Prefetches++
		} else {
			res := c.hier.PrefetchAccess(addr, issueAt)
			if pfDelay > 0 && res.NewMiss {
				res.CompleteAt += pfDelay
				c.hier.DelayFill(addr, res.CompleteAt)
			}
			c.PrefetchLevel[res.Level]++
			c.Prefetches++
			if c.trace != nil {
				c.trace.Emit(obs.Event{Cycle: issueAt, Arg: addr, Kind: obs.KindPrefetch,
					Core: c.id, Ctx: uint8(t.id), Level: uint8(res.Level)})
			}
			if res.NewMiss {
				c.mshrClaim(res.CompleteAt)
				c.observeFill(t, addr, issueAt, res)
			}
		}
		return issueAt + 1 // fire-and-forget: retires without the fill
	default: // clStore
		// The store buffer absorbs the store; the access still moves
		// cache state and consumes bandwidth on a miss (RFO).
		issueAt := c.claimIssue(ready)
		c.hier.DemandAccess(addr, issueAt)
		c.Stores++
		return issueAt + 1
	}
}

// dispatch fetches, functionally executes, and inserts instructions into
// the ROB, sharing FetchWidth between the threads. Straight-line ALU
// runs dispatch as superblocks (see dispatchALURun) unless
// Config.Interpret forces the per-instruction reference path.
func (c *Core) dispatch() {
	slots := c.cfg.FetchWidth
	first := int(c.now & 1)
	for k := 0; k < 2 && slots > 0; k++ {
		t := &c.threads[(first+k)&1]
		for slots > 0 {
			n := c.dispatchRun(t, slots)
			if n == 0 {
				break
			}
			slots -= n
		}
	}
}

// dispatchRun dispatches the next superblock (or single instruction) of
// t, bounded by the available fetch slots, and returns how many
// instructions it consumed (0 when the thread cannot dispatch).
func (c *Core) dispatchRun(t *thread, slots int) int {
	if !t.active || t.halted || t.finished || c.err != nil {
		return 0
	}
	if t.id == 0 && c.govArmed {
		// Armed PC-synchronized respawn: re-seed the ghost the moment the
		// main thread arrives back at the region-loop header, where its
		// loop-carried registers are valid ghost entry state (registers
		// are computed at dispatch in this engine, so everything before
		// the backedge has executed). Edge-detected: a header stalled on
		// the ROB or fetch block must re-seed once, not every cycle. The
		// check sits before the structural blocks for exactly that reason.
		if int64(t.pc) == c.govResyncPC {
			if !c.govAtResync {
				c.govAtResync = true
				c.govRespawn()
			}
		} else {
			c.govAtResync = false
		}
	}
	if c.now < t.startAt || c.now < t.fetchBlockedUntil || t.serializeBlocked {
		return 0
	}
	robCap := c.robCap()
	if t.count >= robCap {
		return 0
	}
	if t.pc < 0 || t.pc >= len(t.code) {
		c.err = fmt.Errorf("cpu: %q thread %d pc %d out of range", t.prog.Name, t.id, t.pc)
		return 0
	}
	d := &t.code[t.pc]
	if d.class != clALU || c.cfg.Interpret {
		if c.dispatchOne(t) {
			return 1
		}
		return 0
	}
	n := int(d.run)
	if n > slots {
		n = slots
	}
	if free := robCap - t.count; n > free {
		n = free
	}
	return c.dispatchALURun(t, n)
}

// dispatchALURun executes and inserts n straight-line ALU instructions
// starting at t.pc as one fused superblock: one loop over pre-decoded
// entries with no structural checks (ALU ops have none) and no
// per-instruction class switch on the way in. Cycle accounting is
// untouched — each instruction still occupies its own ROB slot, claims
// its issue port at the first port-free cycle after its operand floor,
// and claims its destination — so the timing is bit-identical to
// dispatching the run one instruction at a time (the equivalence suite
// diffs exactly that via Config.Interpret).
func (c *Core) dispatchALURun(t *thread, n int) int {
	code := t.code
	robLen := len(t.state)
	pc := t.pc
	tail := t.tail
	for i := 0; i < n; i++ {
		d := &code[pc]
		var v int64
		switch d.op {
		case isa.OpNop:
		case isa.OpConst:
			v = d.imm
		case isa.OpMov:
			v = t.regs[d.src1]
		case isa.OpAdd:
			v = t.regs[d.src1] + t.regs[d.src2]
		case isa.OpSub:
			v = t.regs[d.src1] - t.regs[d.src2]
		case isa.OpMul:
			v = t.regs[d.src1] * t.regs[d.src2]
		case isa.OpDiv:
			if t.regs[d.src2] != 0 {
				v = t.regs[d.src1] / t.regs[d.src2]
			}
		case isa.OpRem:
			if t.regs[d.src2] != 0 {
				v = t.regs[d.src1] % t.regs[d.src2]
			}
		case isa.OpAnd:
			v = t.regs[d.src1] & t.regs[d.src2]
		case isa.OpOr:
			v = t.regs[d.src1] | t.regs[d.src2]
		case isa.OpXor:
			v = t.regs[d.src1] ^ t.regs[d.src2]
		case isa.OpShl:
			v = t.regs[d.src1] << (uint64(t.regs[d.src2]) & 63)
		case isa.OpShr:
			v = int64(uint64(t.regs[d.src1]) >> (uint64(t.regs[d.src2]) & 63))
		case isa.OpMin:
			v = min(t.regs[d.src1], t.regs[d.src2])
		case isa.OpMax:
			v = max(t.regs[d.src1], t.regs[d.src2])
		case isa.OpAddI:
			v = t.regs[d.src1] + d.imm
		case isa.OpMulI:
			v = t.regs[d.src1] * d.imm
		case isa.OpAndI:
			v = t.regs[d.src1] & d.imm
		case isa.OpXorI:
			v = t.regs[d.src1] ^ d.imm
		case isa.OpShlI:
			v = t.regs[d.src1] << (uint64(d.imm) & 63)
		case isa.OpShrI:
			v = int64(uint64(t.regs[d.src1]) >> (uint64(d.imm) & 63))
		default:
			c.err = fmt.Errorf("cpu: %q pc %d: unimplemented op %s", t.prog.Name, pc, d.op)
			t.pc = pc
			t.tail = tail
			t.count += i
			return i
		}
		idx := int32(tail)
		ready := c.now + 1
		if f := t.readyFloor(d); f > ready {
			ready = f
		}
		if d.hasDst {
			t.regs[d.dst] = v
			t.producer[d.dst] = idx
		}
		t.rpc[idx] = int32(pc)
		t.cmeta[idx] = d.cmeta
		t.completeAt[idx] = c.claimIssue(ready) + c.lat[d.latClass]
		t.state[idx] = stIssued
		if c.trace != nil {
			if d.skipFlag {
				if !t.inSkip {
					t.inSkip = true
					c.trace.Emit(obs.Event{Cycle: c.now, Arg: int64(pc),
						Kind: obs.KindSyncSkip, Core: c.id, Ctx: uint8(t.id)})
				}
			} else {
				t.inSkip = false
			}
		}
		tail++
		if tail == robLen {
			tail = 0
		}
		pc++
	}
	t.tail = tail
	t.count += n
	t.pc = pc
	return n
}

// dispatchOne is the per-instruction reference path: non-ALU
// instructions always take it, and Config.Interpret routes everything
// through it so the differential suite can prove superblock dispatch
// changes nothing. It works off the original isa.Instr deliberately —
// this is the interpreter the decoded fast path is measured against.
func (c *Core) dispatchOne(t *thread) bool {
	if !t.active || t.halted || t.finished || c.err != nil {
		return false
	}
	if c.now < t.startAt || c.now < t.fetchBlockedUntil || t.serializeBlocked {
		return false
	}
	if t.count >= c.robCap() {
		return false
	}
	if t.pc < 0 || t.pc >= len(t.prog.Code) {
		c.err = fmt.Errorf("cpu: %q thread %d pc %d out of range", t.prog.Name, t.id, t.pc)
		return false
	}
	in := &t.prog.Code[t.pc]
	d := &t.code[t.pc] // decoded twin: class/latency/flag lookups only

	// Structural pre-checks that must hold before consuming the instruction.
	switch in.Op {
	case isa.OpLoad, isa.OpAtomicAdd, isa.OpPrefetch:
		if t.lq >= c.lqCap() {
			return false
		}
	case isa.OpStore:
		if t.sq >= c.sqCap() {
			return false
		}
	case isa.OpJoin:
		if in.Imm == JoinWaitImm && c.smtActive() {
			return false // wait for the worker to finish
		}
	case isa.OpSpawn:
		if c.smtActive() {
			c.err = fmt.Errorf("cpu: %q spawns helper while sibling context busy", t.prog.Name)
			return false
		}
	}

	idx := int32(t.tail)
	t.rpc[idx] = int32(t.pc)
	t.cmeta[idx] = d.cmeta
	floor := t.readyFloor(d)

	// Functional execution (execute-at-dispatch).
	var memAddr int64
	nextPC := t.pc + 1
	switch in.Op {
	case isa.OpNop:
	case isa.OpConst:
		t.regs[in.Dst] = in.Imm
	case isa.OpMov:
		t.regs[in.Dst] = t.regs[in.Src1]
	case isa.OpAdd:
		t.regs[in.Dst] = t.regs[in.Src1] + t.regs[in.Src2]
	case isa.OpSub:
		t.regs[in.Dst] = t.regs[in.Src1] - t.regs[in.Src2]
	case isa.OpMul:
		t.regs[in.Dst] = t.regs[in.Src1] * t.regs[in.Src2]
	case isa.OpDiv:
		if t.regs[in.Src2] == 0 {
			t.regs[in.Dst] = 0
		} else {
			t.regs[in.Dst] = t.regs[in.Src1] / t.regs[in.Src2]
		}
	case isa.OpRem:
		if t.regs[in.Src2] == 0 {
			t.regs[in.Dst] = 0
		} else {
			t.regs[in.Dst] = t.regs[in.Src1] % t.regs[in.Src2]
		}
	case isa.OpAnd:
		t.regs[in.Dst] = t.regs[in.Src1] & t.regs[in.Src2]
	case isa.OpOr:
		t.regs[in.Dst] = t.regs[in.Src1] | t.regs[in.Src2]
	case isa.OpXor:
		t.regs[in.Dst] = t.regs[in.Src1] ^ t.regs[in.Src2]
	case isa.OpShl:
		t.regs[in.Dst] = t.regs[in.Src1] << (uint64(t.regs[in.Src2]) & 63)
	case isa.OpShr:
		t.regs[in.Dst] = int64(uint64(t.regs[in.Src1]) >> (uint64(t.regs[in.Src2]) & 63))
	case isa.OpMin:
		t.regs[in.Dst] = min(t.regs[in.Src1], t.regs[in.Src2])
	case isa.OpMax:
		t.regs[in.Dst] = max(t.regs[in.Src1], t.regs[in.Src2])
	case isa.OpAddI:
		t.regs[in.Dst] = t.regs[in.Src1] + in.Imm
	case isa.OpMulI:
		t.regs[in.Dst] = t.regs[in.Src1] * in.Imm
	case isa.OpAndI:
		t.regs[in.Dst] = t.regs[in.Src1] & in.Imm
	case isa.OpXorI:
		t.regs[in.Dst] = t.regs[in.Src1] ^ in.Imm
	case isa.OpShlI:
		t.regs[in.Dst] = t.regs[in.Src1] << (uint64(in.Imm) & 63)
	case isa.OpShrI:
		t.regs[in.Dst] = int64(uint64(t.regs[in.Src1]) >> (uint64(in.Imm) & 63))
	case isa.OpLoad:
		addr := t.regs[in.Src1] + in.Imm
		if addr < 0 || addr >= c.mem.Size() {
			c.err = fmt.Errorf("cpu: %q thread %d pc %d: segfault: load at %d", t.prog.Name, t.id, t.pc, addr)
			return false
		}
		memAddr = addr
		c.turn()
		if c.shadow != nil && t.id == 0 {
			c.shadow.demand(addr)
		}
		v := c.mem.LoadWord(addr)
		if c.fault != nil && t.id == 1 &&
			in.Flags&(isa.FlagSync|isa.FlagSyncSkip) == isa.FlagSync {
			// The ghost's sync-counter read may observe the main thread's
			// published counter with a lag (store visibility delay). The
			// value only steers the ghost's throttle state machine — ghosts
			// never store — so this is timing-only.
			v = c.fault.StaleValue(v)
		}
		t.regs[in.Dst] = v
		t.lq++
	case isa.OpStore:
		addr := t.regs[in.Src1] + in.Imm
		if addr < 0 || addr >= c.mem.Size() {
			c.err = fmt.Errorf("cpu: %q thread %d pc %d: segfault: store at %d", t.prog.Name, t.id, t.pc, addr)
			return false
		}
		memAddr = addr
		c.turn()
		c.mem.StoreWord(addr, t.regs[in.Src2])
		t.sq++
	case isa.OpPrefetch:
		// Prefetches to unmapped addresses are dropped, as on real
		// hardware; clamp so the cache model sees a harmless line. The
		// shadow oracle sees the raw address — an unmapped prefetch is
		// precisely the divergence it exists to catch.
		addr := t.regs[in.Src1] + in.Imm
		if c.shadow != nil && t.id == 1 {
			c.shadow.prefetch(addr)
		}
		if addr < 0 || addr >= c.mem.Size() {
			addr = 0
		}
		memAddr = addr
		c.turn()
		t.lq++
	case isa.OpAtomicAdd:
		addr := t.regs[in.Src1] + in.Imm
		if addr < 0 || addr >= c.mem.Size() {
			c.err = fmt.Errorf("cpu: %q thread %d pc %d: segfault: atomic at %d", t.prog.Name, t.id, t.pc, addr)
			return false
		}
		memAddr = addr
		c.turn()
		if c.shadow != nil && t.id == 0 {
			c.shadow.demand(addr)
		}
		v := c.mem.LoadWord(addr) + t.regs[in.Src2]
		c.mem.StoreWord(addr, v)
		t.regs[in.Dst] = v
		t.lq++
	case isa.OpSerialize:
		t.serializeBlocked = true
		t.serStart = c.now
		t.serPC = int32(t.pc)
	case isa.OpJmp:
		nextPC = int(in.Target)
	case isa.OpBEQ:
		if t.regs[in.Src1] == t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBNE:
		if t.regs[in.Src1] != t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBLT:
		if t.regs[in.Src1] < t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBGE:
		if t.regs[in.Src1] >= t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBLE:
		if t.regs[in.Src1] <= t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpBGT:
		if t.regs[in.Src1] > t.regs[in.Src2] {
			nextPC = int(in.Target)
		}
	case isa.OpSpawn:
		hid := int(in.Imm)
		if hid < 0 || hid >= len(c.helpers) || c.helpers[hid] == nil {
			c.err = fmt.Errorf("cpu: %q spawns unknown helper %d", t.prog.Name, hid)
			return false
		}
		c.accumulate(1)
		spawnDelay := int64(0)
		if c.fault != nil {
			spawnDelay = c.fault.SpawnDelay()
		}
		c.threads[1].reset(c.helpers[hid], c.dhelpers[hid], c.cfg.ROBSize, c.now+c.cfg.SpawnCostHelper+spawnDelay)
		// The helper inherits the spawning thread's register values (the
		// closure the thread-start call captures); extracted ghost
		// threads rely on this for their live-ins.
		c.threads[1].regs = t.regs
		c.Spawns++
		c.lastHid = hid
		c.ghostStart = c.now
		if c.trace != nil {
			c.trace.Emit(obs.Event{Cycle: c.now, Arg: int64(hid),
				Kind: obs.KindGhostSpawn, Core: c.id, Ctx: uint8(t.id)})
		}
		bl := c.now + c.cfg.SpawnCostMain
		if bl > t.fetchBlockedUntil {
			t.fetchBlockedUntil = bl
		}
	case isa.OpJoin:
		c.deactivateHelper()
		// Main is past the ghosted region: a governor re-spawn after this
		// point would prefetch against code main no longer runs.
		c.noRespawn = true
		if c.trace != nil {
			c.trace.Emit(obs.Event{Cycle: c.now, Kind: obs.KindGhostJoin,
				Core: c.id, Ctx: uint8(t.id)})
		}
		bl := c.now + c.cfg.JoinCost
		if bl > t.fetchBlockedUntil {
			t.fetchBlockedUntil = bl
		}
	case isa.OpHalt:
		t.halted = true
	default:
		c.err = fmt.Errorf("cpu: %q pc %d: unimplemented op %s", t.prog.Name, t.pc, in.Op)
		return false
	}

	// Observability taps (no effect on timing or statistics).
	if c.trace != nil {
		if in.Flags&isa.FlagSyncSkip != 0 {
			if !t.inSkip {
				t.inSkip = true
				c.trace.Emit(obs.Event{Cycle: c.now, Arg: int64(t.pc),
					Kind: obs.KindSyncSkip, Core: c.id, Ctx: uint8(t.id)})
			}
		} else {
			t.inSkip = false
		}
	}
	if (c.wrec != nil || (c.met != nil && c.met.GhostLead != nil)) &&
		t.id == 1 && in.Op == isa.OpLoad &&
		in.Flags&(isa.FlagSync|isa.FlagSyncSkip|isa.FlagGovParam) == isa.FlagSync {
		// A sync check: the ghost just read the main thread's published
		// counter. Its own count is the published ghost counter word
		// (requires core.SyncParams.Trace).
		c.turn()
		if c.met != nil && c.met.GhostLead != nil {
			c.met.GhostLead.Observe(c.mem.LoadWord(c.met.GhostCounterAddr) - t.regs[in.Dst])
		}
		if c.wrec != nil {
			c.wrec.ObserveLead(c.mem.LoadWord(c.wrecAddr) - t.regs[in.Dst])
		}
	}

	// Claim the destination register for timing purposes.
	if in.Op.HasDst() {
		t.producer[in.Dst] = idx
	}

	// Entry scheduling: fix the issue and completion cycles now.
	switch d.class {
	case clSerialize:
		t.state[idx] = stSerialize
		t.completeAt[idx] = 0
	case clSpawn, clJoin, clHalt:
		// No issue slot and no destination, hence no dependents:
		// completes next cycle; commit reads completeAt directly.
		t.state[idx] = stIssued
		t.completeAt[idx] = c.now + 1
	case clLoad, clStore, clPrefetch, clAtomic:
		t.state[idx] = stIssued
		t.completeAt[idx] = c.issueMem(t, d, memAddr, floor)
	default:
		ready := c.now + 1
		if floor > ready {
			ready = floor
		}
		t.state[idx] = stIssued
		t.completeAt[idx] = c.claimIssue(ready) + c.lat[d.latClass]
		// A hard branch resolving in the future stalls fetch until its
		// completion cycle plus the redirect penalty. A branch whose
		// operands were final at dispatch predicts perfectly and costs
		// nothing — the model the event-driven engine expressed with a
		// waitBranch stall cleared at the completion event.
		if d.hard && floor > c.now {
			if bl := t.completeAt[idx] + c.cfg.BranchPenalty; bl > t.fetchBlockedUntil {
				t.fetchBlockedUntil = bl
			}
		}
	}

	t.tail++
	if t.tail == len(t.state) {
		t.tail = 0
	}
	t.count++
	t.pc = nextPC
	return true
}

// JoinWaitImm distinguishes a "wait for the helper to finish" join (used
// by the SMT-parallelization transform) from the default "kill the
// helper" join Ghost Threading uses.
const JoinWaitImm = 1

// Thread statistics accessors.

// accumulate folds context id's current counters into the spawn-surviving
// aggregates (called before the context is reset for a new helper).
func (c *Core) accumulate(id int) {
	t := &c.threads[id]
	c.accCommitted[id] += t.committed
	c.accSerializes[id] += t.serializes
	c.accSerStall[id] += t.serializeStall
	c.accFrontend[id] += t.frontendStall
	t.committed, t.serializes, t.serializeStall, t.frontendStall = 0, 0, 0, 0
}

// Committed returns the number of instructions committed by context id,
// across helper re-spawns.
func (c *Core) Committed(id int) int64 { return c.accCommitted[id] + c.threads[id].committed }

// Serializes returns how many serialize instructions context id retired,
// across helper re-spawns.
func (c *Core) Serializes(id int) int64 { return c.accSerializes[id] + c.threads[id].serializes }

// SerializeStall returns the total cycles context id spent with fetch
// stopped behind serialize instructions (dispatch to commit per
// serialize, including the partial window of a serialize killed by a
// join), across helper re-spawns. It equals the sum of the
// serialize-throttle span durations in a trace of the same run.
func (c *Core) SerializeStall(id int) int64 {
	return c.accSerStall[id] + c.threads[id].serializeStall
}

// FrontendStalls returns cycles context id spent active with an empty ROB.
func (c *Core) FrontendStalls(id int) int64 {
	return c.accFrontend[id] + c.threads[id].frontendStall
}

// SetTrace attaches (or with nil detaches) an event recorder; coreID is
// stamped into emitted events as the Perfetto process id. Attach before
// running — events are emitted from the attach point on.
func (c *Core) SetTrace(r *obs.Recorder, coreID int) {
	c.trace = r
	c.id = uint8(coreID)
}

// Trace returns the attached recorder, or nil.
func (c *Core) Trace() *obs.Recorder { return c.trace }

// SetMetrics attaches (or with nil detaches) histogram hooks.
func (c *Core) SetMetrics(m *obs.CoreMetrics) { c.met = m }

// SetWindowRecorder attaches (or with nil detaches) the windowed
// telemetry accumulator. ghostAddr is the memory word holding the
// ghost's published iteration count (core.Counters.GhostAddr; the
// ghost-lead tap needs core.SyncParams.Trace so the ghost publishes
// there). The recorder is single-writer (this core) and drained only
// between epochs by the run coordinator, so windowed runs stay eligible
// for parallel stepping.
func (c *Core) SetWindowRecorder(w *obs.WindowRecorder, ghostAddr int64) {
	c.wrec = w
	c.wrecAddr = ghostAddr
}

// SetFault attaches (or with nil detaches) a fault injector. Attach
// before Load: Load schedules the injector's timing-wheel triggers.
func (c *Core) SetFault(inj *fault.Injector) { c.fault = inj }

// SetGovCounter tells the governor hooks which memory word holds the
// main thread's published sync counter (core.Counters.MainAddr); the
// re-spawn handler re-zeroes it to re-align the inter-thread distance.
// 0 (the default) skips the reset.
func (c *Core) SetGovCounter(addr int64) { c.govCtrAddr = addr }

// SetGovResync arms PC-synchronized re-spawning: an evGovRespawn no
// longer re-seeds the helper at the (arbitrary) window-boundary cycle —
// where the main context's registers are mid-iteration garbage as ghost
// entry state — but sets a trigger that fires when the MAIN thread next
// dispatches pc, the rewritten main's region-loop header
// (slice.Result.ResyncPC). There the loop-carried live-ins are exactly
// the values OpSpawn would have captured, so the fresh ghost starts the
// new outer iteration (BFS level, join partition) in lock-step with
// main. The trigger is sticky: once armed, EVERY later header crossing
// re-seeds — converting a phase-stale slice into a per-phase adaptive
// ghost — until cap total governor respawns (0 = unbounded), a join, or
// a fault kill retires the context for good. The header dispatch is a
// stepped cycle in every stepping mode, so PC-synced respawns preserve
// bit-identical replay.
func (c *Core) SetGovResync(pc, cap int64) { c.govResyncPC, c.govRespawnCap = pc, cap }

// ScheduleGovKill schedules a governor ghost-kill for the next stepped
// cycle. It rides the timing wheel exactly like the evFaultKill trigger,
// so it fires at the same cycle under per-cycle stepping, event skipping,
// and parallel stepping (NextEvent never skips past a pending wheel
// event). Call only between steps (window-boundary flushes qualify).
func (c *Core) ScheduleGovKill() {
	c.events.push(c.now, event{at: c.now + 1, kind: evGovKill})
}

// ScheduleGovRespawn schedules a governor ghost re-spawn for the next
// stepped cycle (see ScheduleGovKill for the determinism argument and
// govRespawn for the semantics).
func (c *Core) ScheduleGovRespawn() {
	c.events.push(c.now, event{at: c.now + 1, kind: evGovRespawn})
}

// FaultStats returns the counters of faults actually injected so far
// (zero when no injector is attached).
func (c *Core) FaultStats() fault.Stats {
	if c.fault == nil {
		return fault.Stats{}
	}
	return c.fault.Stats
}

// PCProfile returns per-static-instruction (stall cycles, executions) for
// context id's current program. The slices alias internal state; callers
// must copy if they outlive the run.
func (c *Core) PCProfile(id int) (stall, exec []int64) {
	return c.threads[id].stallPC, c.threads[id].execPC
}

// HelperActive reports whether context 1 is running.
func (c *Core) HelperActive() bool { return c.smtActive() }

// Hier returns the core's cache hierarchy (for system-level statistics).
func (c *Core) Hier() *cache.Hierarchy { return c.hier }

// PipelineSample is a point-in-time snapshot of the core's occupancy,
// used by the gttrace tool to visualise full-window stalls (figure 2)
// and serialize throttling.
type PipelineSample struct {
	Cycle            int64
	ROB              [2]int  // entries occupied per context
	LQ               [2]int  // load-queue entries per context
	SQ               [2]int  // store-queue entries per context
	MSHRs            int     // outstanding L1 misses (shared)
	SerializeBlocked [2]bool // context blocked behind a serialize
	Active           [2]bool
}

// Sample snapshots the pipeline occupancy at the current cycle.
func (c *Core) Sample() PipelineSample {
	var s PipelineSample
	s.Cycle = c.now
	s.MSHRs = c.mshrBusy(c.now)
	for i := range c.threads {
		t := &c.threads[i]
		s.ROB[i] = t.count
		s.LQ[i] = t.lq
		s.SQ[i] = t.sq
		s.SerializeBlocked[i] = t.serializeBlocked
		s.Active[i] = t.active && !t.finished
	}
	return s
}
