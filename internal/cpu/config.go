// Package cpu implements the cycle-level model of one out-of-order core
// with two SMT hardware contexts — the substrate Ghost Threading runs on.
//
// The model follows the structure the paper's argument depends on
// (figure 2): a reorder buffer that is statically partitioned between the
// two SMT threads when both are active, in-order commit (so a long-latency
// load at the head produces a full-window stall), load/store queue and
// MSHR limits (so MLP is bounded by them once prefetching decouples loads
// from the ROB), shared fetch/issue bandwidth, and a `serialize`
// instruction that halts a thread's fetch until its older instructions
// drain (§4.3.1).
//
// Semantics are execute-at-dispatch: each instruction's functional effect
// (register values, memory contents, branch direction) is applied when it
// is dispatched, in program order, while the timing model independently
// tracks when its value would actually be available. This is the standard
// trace-driven simplification; it implies perfect branch prediction except
// for branches explicitly flagged FlagHardBranch, which stall dispatch
// until they resolve plus a redirect penalty.
package cpu

// Config parameterises the core model. The defaults echo a scaled-down
// Alder Lake P-core; DESIGN.md §4 discusses the choices.
type Config struct {
	ROBSize int // total reorder-buffer entries (halved per thread in SMT mode)
	LoadQ   int // total load-queue entries (halved in SMT mode)
	StoreQ  int // total store-queue entries (halved in SMT mode)

	FetchWidth  int // instructions dispatched per cycle, shared
	IssueWidth  int // instructions issued to execution per cycle, shared
	CommitWidth int // instructions committed per cycle, per thread

	MSHRs int // outstanding L1 misses, shared between the SMT threads

	IntLat int64 // simple ALU latency
	MulLat int64 // multiply latency
	DivLat int64 // divide/remainder latency

	// SerializeLat models the drain+restart cost of the serialize
	// instruction once it reaches the ROB head (the instruction is
	// microcoded and far from free even on an empty pipeline).
	SerializeLat int64

	// BranchPenalty is the redirect cost charged after a FlagHardBranch
	// resolves.
	BranchPenalty int64

	// Thread activation/deactivation costs (paper §4.2.2: activating a
	// helper uses a system call that "may take thousands of cycles").
	SpawnCostMain   int64 // cycles the spawning thread is blocked
	SpawnCostHelper int64 // cycles before the helper starts fetching
	JoinCost        int64 // cycles the main thread pays to deactivate/join

	// Interpret disables superblock dispatch, routing every instruction
	// through the per-instruction reference interpreter. Timing and
	// results are bit-identical either way (the equivalence suite proves
	// it); the flag exists so that proof can run, and as a debugging aid.
	Interpret bool
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		ROBSize:         192,
		LoadQ:           96,
		StoreQ:          64,
		FetchWidth:      6,
		IssueWidth:      6,
		CommitWidth:     6,
		MSHRs:           32,
		IntLat:          1,
		MulLat:          3,
		DivLat:          12,
		SerializeLat:    30,
		BranchPenalty:   12,
		SpawnCostMain:   6000,
		SpawnCostHelper: 3000,
		JoinCost:        1500,
	}
}
