package cpu

import "ghostthread/internal/cache"

// shadow.go — the dynamic shadow oracle, the runtime half of the
// translation validator (internal/analysis/transval.go). When attached,
// the core records every ghost-context prefetch address into a bounded
// shadow buffer and cross-checks it against the main context's demand
// stream, at cache-line granularity:
//
//   - Confirmed: the main thread demanded the prefetched line at some
//     point in the run (before or after the prefetch — agreement of the
//     address streams, not timeliness, is what is being checked).
//   - Divergent: the run ended and the main thread never demanded the
//     line — the ghost computed an address off the main thread's stream,
//     exactly the failure mode the static validator proves absent.
//   - Orphaned: the prefetch was evicted from the full shadow buffer
//     before any demand arrived; with the demand stream still unknown at
//     eviction time the prefetch is unjudgeable, which is reported
//     separately so a too-small buffer never masquerades as divergence.
//
// The taps sit in dispatch (execute-at-dispatch computes every address
// there), which runs only at stepped cycles — SkipTo never dispatches —
// so shadow counters are bit-identical under per-cycle stepping and the
// event-skip fast path. The oracle reads addresses and mutates only its
// own state: a shadowed run's timing, statistics, and memory image are
// bit-identical to an unshadowed one.

// ShadowStats counts ghost prefetches by shadow-oracle outcome.
type ShadowStats struct {
	Confirmed int64 `json:"confirmed"`
	Divergent int64 `json:"divergent"`
	Orphaned  int64 `json:"orphaned"`
}

// Add accumulates other into s.
func (s *ShadowStats) Add(other ShadowStats) {
	s.Confirmed += other.Confirmed
	s.Divergent += other.Divergent
	s.Orphaned += other.Orphaned
}

// Checked returns the number of prefetches that received a verdict.
func (s *ShadowStats) Checked() int64 { return s.Confirmed + s.Divergent + s.Orphaned }

// DefaultShadowBuffer is the pending-prefetch capacity used when a
// ShadowConfig leaves Buffer zero: deep enough for any sane ghost lead.
const DefaultShadowBuffer = 4096

// shadowOracle holds the oracle state for one core.
type shadowOracle struct {
	buffer   int
	demanded map[int64]bool // lines the main context demand-accessed
	pending  []int64        // FIFO of ghost prefetch lines awaiting a demand
	stats    ShadowStats
	drained  bool
}

func newShadowOracle(buffer int) *shadowOracle {
	if buffer <= 0 {
		buffer = DefaultShadowBuffer
	}
	return &shadowOracle{buffer: buffer, demanded: make(map[int64]bool)}
}

// demand records a main-context demand access (load or atomic).
func (o *shadowOracle) demand(addr int64) {
	o.demanded[cache.LineOf(addr)] = true
}

// prefetch records a ghost-context prefetch of the raw (pre-clamp)
// address. Out-of-range addresses deliberately stay raw: the hardware
// drops them, but the oracle must still judge them — the main thread can
// never demand an unmapped line, so they surface as divergent.
func (o *shadowOracle) prefetch(addr int64) {
	line := cache.LineOf(addr)
	if o.demanded[line] {
		o.stats.Confirmed++
		return
	}
	o.pending = append(o.pending, line)
	if len(o.pending) > o.buffer {
		// Evict the oldest entry. A demand may still arrive for it later,
		// so the eviction is indeterminate, not divergent.
		head := o.pending[0]
		o.pending = o.pending[1:]
		if o.demanded[head] {
			o.stats.Confirmed++
		} else {
			o.stats.Orphaned++
		}
	}
}

// finalize judges the remaining pending prefetches against the complete
// demand stream. Idempotent; called when the run's statistics are read.
func (o *shadowOracle) finalize() {
	if o.drained {
		return
	}
	o.drained = true
	for _, line := range o.pending {
		if o.demanded[line] {
			o.stats.Confirmed++
		} else {
			o.stats.Divergent++
		}
	}
	o.pending = nil
}

// SetShadow attaches (or with nil detaches) a shadow oracle. Attach
// before running; Load preserves the attachment, so one oracle observes
// every program a core runs until it is detached.
func (c *Core) SetShadow(o *ShadowOracle) {
	if o == nil {
		c.shadow = nil
		return
	}
	c.shadow = o.impl
}

// ShadowOracle is the exported handle for attaching a shadow oracle to a
// core (opaque: all state lives behind it).
type ShadowOracle struct{ impl *shadowOracle }

// NewShadow builds a shadow oracle with the given pending-buffer
// capacity (0 selects DefaultShadowBuffer).
func NewShadow(buffer int) *ShadowOracle {
	return &ShadowOracle{impl: newShadowOracle(buffer)}
}

// ShadowStats finalizes and returns the oracle's counters (zero when no
// oracle is attached).
func (c *Core) ShadowStats() ShadowStats {
	if c.shadow == nil {
		return ShadowStats{}
	}
	c.shadow.finalize()
	return c.shadow.stats
}
