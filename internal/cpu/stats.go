package cpu

import "ghostthread/internal/cache"

// Stats is a complete end-of-run statistics snapshot of one core: every
// counter the timing model maintains, in one comparable value. The
// observability differential suites assert that a traced run's Stats are
// deeply equal to an untraced run's, and the event-skip suites that
// skipping matches per-cycle stepping.
type Stats struct {
	Cycles int64

	// Per-context counters (index 0 = main, 1 = helper), accumulated
	// across helper re-spawns.
	Committed      [2]int64
	Serializes     [2]int64
	SerializeStall [2]int64
	FrontendStalls [2]int64

	// Memory-system counters.
	LoadLevel     [4]int64 // demand loads + atomics satisfied per level
	PrefetchLevel [4]int64 // software prefetches satisfied per level
	Stores        int64
	Prefetches    int64
	Spawns        int64
	GovKills      int64
	GovRespawns   int64

	L1Hits, L1InFlightHits, L1Misses int64
	L2Hits, L2InFlightHits, L2Misses int64
	HWPrefetches                     int64

	// Prefetch classifies the software prefetches by outcome.
	Prefetch cache.PrefetchQuality
}

// Stats snapshots the core's counters at the current cycle.
func (c *Core) Stats() Stats {
	s := Stats{
		Cycles:        c.now,
		LoadLevel:     c.LoadLevel,
		PrefetchLevel: c.PrefetchLevel,
		Stores:        c.Stores,
		Prefetches:    c.Prefetches,
		Spawns:        c.Spawns,
		GovKills:      c.GovKills,
		GovRespawns:   c.GovRespawns,
		HWPrefetches:  c.hier.HWPrefetches,
		Prefetch:      c.hier.PrefetchQuality(),
	}
	for id := 0; id < 2; id++ {
		s.Committed[id] = c.Committed(id)
		s.Serializes[id] = c.Serializes(id)
		s.SerializeStall[id] = c.SerializeStall(id)
		s.FrontendStalls[id] = c.FrontendStalls(id)
	}
	l1, l2 := c.hier.L1, c.hier.L2
	s.L1Hits, s.L1InFlightHits, s.L1Misses = l1.Hits, l1.InFlightHits, l1.Misses
	s.L2Hits, s.L2InFlightHits, s.L2Misses = l2.Hits, l2.InFlightHits, l2.Misses
	return s
}
