package cpu

import "ghostthread/internal/isa"

// Instruction classes for decoded dispatch. clALU covers every
// straight-line functional op (including nop): the ops a superblock can
// execute back-to-back without touching memory, control flow, or thread
// state.
const (
	clALU = iota
	clLoad
	clStore
	clPrefetch
	clAtomic
	clSerialize
	clJmp
	clCondBr
	clSpawn
	clJoin
	clHalt
)

// issue-latency classes, resolved against the core's Config at issue time
// (Core.lat): index 0 = IntLat, 1 = MulLat, 2 = DivLat.
const (
	latInt = iota
	latMul
	latDiv
)

// dInstr is one pre-decoded instruction: register indices widened to
// native ints, the dispatch class and issue-latency class precomputed,
// and the flag tests the hot path needs folded to booleans, so dispatch,
// issue, completion, and commit never re-interpret an isa.Instr.
type dInstr struct {
	op       isa.Op // original opcode: the execute-switch key
	class    uint8
	dst      uint8
	src1     uint8
	src2     uint8
	nsrc     uint8
	latClass uint8
	hasDst   bool
	hard     bool // conditional branch with FlagHardBranch
	syncLoad bool // load with (FlagSync|FlagSyncSkip) == FlagSync
	skipFlag bool // FlagSyncSkip set (trace tap)
	run      uint16
	cmeta    uint16 // packed commit metadata, copied into the ROB slot
	imm      int64
	target   int32
}

// Commit-side metadata layout (dInstr.cmeta / thread.cmeta): everything
// retirement needs, packed so commit never touches the 40-byte dInstr.
// Bits 0–7 are the destination register, bit 8 marks a live destination,
// and bits 9–10 select which queue entry (if any) the retiring
// instruction releases.
const (
	cmetaDstMask = 0xff
	cmetaHasDst  = 1 << 8
	cmetaQShift  = 9
	cmetaQNone   = 0
	cmetaQStore  = 1
	cmetaQLoad   = 2 // loads, prefetches, atomics share the load queue
)

// decodedProgram caches the decoded form of one isa.Program, built once
// per Core.Load. Superblocks are encoded by run: for a clALU instruction
// at pc, code[pc].run is the length of the maximal straight-line ALU run
// starting there (ending at the first branch, memory op, serialize, or
// thread op), so every pc is implicitly the entry of its own superblock
// suffix and dispatch needs no separate block table.
//
// There is no invalidation: isa.Program is immutable once built (see the
// package isa contract) and the decoded image is keyed to the *Program a
// thread is running, dying with the Load/spawn that installed it. A
// re-spawned helper re-uses the image decoded at Load.
type decodedProgram struct {
	prog *isa.Program
	code []dInstr
}

func decodeProgram(p *isa.Program) *decodedProgram {
	if p == nil {
		return nil
	}
	dp := &decodedProgram{prog: p, code: make([]dInstr, len(p.Code))}
	for i := range p.Code {
		in := &p.Code[i]
		d := &dp.code[i]
		d.op = in.Op
		d.dst = uint8(in.Dst)
		d.src1 = uint8(in.Src1)
		d.src2 = uint8(in.Src2)
		d.nsrc = uint8(in.Op.NumSrcs())
		d.hasDst = in.Op.HasDst()
		d.imm = in.Imm
		d.target = in.Target
		d.hard = in.Op.IsCondBranch() && in.HasFlag(isa.FlagHardBranch)
		d.syncLoad = in.Op == isa.OpLoad &&
			in.Flags&(isa.FlagSync|isa.FlagSyncSkip) == isa.FlagSync
		d.skipFlag = in.Flags&isa.FlagSyncSkip != 0
		switch in.Op {
		case isa.OpLoad:
			d.class = clLoad
		case isa.OpStore:
			d.class = clStore
		case isa.OpPrefetch:
			d.class = clPrefetch
		case isa.OpAtomicAdd:
			d.class = clAtomic
		case isa.OpSerialize:
			d.class = clSerialize
		case isa.OpJmp:
			d.class = clJmp
		case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLE, isa.OpBGT:
			d.class = clCondBr
		case isa.OpSpawn:
			d.class = clSpawn
		case isa.OpJoin:
			d.class = clJoin
		case isa.OpHalt:
			d.class = clHalt
		default:
			d.class = clALU
		}
		switch in.Op {
		case isa.OpMul:
			d.latClass = latMul
		case isa.OpDiv, isa.OpRem:
			d.latClass = latDiv
		default:
			d.latClass = latInt
		}
		d.cmeta = uint16(d.dst)
		if d.hasDst {
			d.cmeta |= cmetaHasDst
		}
		switch d.class {
		case clStore:
			d.cmeta |= cmetaQStore << cmetaQShift
		case clLoad, clPrefetch, clAtomic:
			d.cmeta |= cmetaQLoad << cmetaQShift
		}
	}
	run := 0
	for i := len(dp.code) - 1; i >= 0; i-- {
		if dp.code[i].class == clALU {
			if run < int(^uint16(0)) {
				run++
			}
			dp.code[i].run = uint16(run)
		} else {
			run = 0
		}
	}
	return dp
}
